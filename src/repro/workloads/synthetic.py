"""Synthetic workloads with known ground-truth sharing, used by tests
and ablations.

* :class:`GroupSharingWorkload` — threads form disjoint groups; each
  group shares a pool of group-private objects, every thread also has a
  private pool, and an optional global pool is shared by everyone.  The
  ground-truth TCM is block-diagonal (plus a uniform floor from the
  global pool), so profiler accuracy and placement quality can be
  checked exactly.
* :class:`UniformSharingWorkload` — every thread touches every object;
  the TCM is flat.  A degenerate case for metric sanity checks.
* :class:`RacyCounterWorkload` — threads hammer one shared counter
  object, either under a distributed lock (``locked=True``: every
  conflicting pair is ordered by release->acquire edges) or bare
  (``locked=False``: a seeded, deliberate data race).  Ground truth for
  the happens-before race detector (:mod:`repro.checks.racedetect`).
"""

from __future__ import annotations

import numpy as np

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.util.rng import seeded_rng
from repro.workloads.base import Workload, WorkloadSpec


class GroupSharingWorkload(Workload):
    """Block-structured sharing with exact ground truth."""

    def __init__(
        self,
        n_threads: int = 8,
        *,
        group_size: int = 2,
        objects_per_group: int = 64,
        private_per_thread: int = 32,
        global_objects: int = 0,
        object_size: int = 128,
        rounds: int = 4,
        reads_per_object: int = 3,
        group_writes: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        if group_size < 1 or n_threads % group_size != 0:
            raise ValueError(
                f"group_size {group_size} must divide n_threads {n_threads}"
            )
        self.group_size = group_size
        self.objects_per_group = objects_per_group
        self.private_per_thread = private_per_thread
        self.global_objects = global_objects
        self.object_size = object_size
        self.rounds = rounds
        self.reads_per_object = reads_per_object
        #: producer/consumer mode: each group's first thread *writes* the
        #: group objects every round, so partners placed apart incur
        #: recurring invalidation + re-fetch traffic (not just one cold
        #: fault) — the regime where thread placement actually pays.
        self.group_writes = group_writes
        self.group_pool: list[list[int]] = []
        self.private_pool: list[list[int]] = []
        self.global_pool: list[int] = []

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        return WorkloadSpec(
            name="GroupSharing",
            data_set=(
                f"{self.n_threads} threads / groups of {self.group_size}, "
                f"{self.objects_per_group} shared objects per group"
            ),
            rounds=self.rounds,
            granularity="Synthetic",
            object_size=f"{self.object_size} bytes",
        )

    @property
    def n_groups(self) -> int:
        """Number of thread groups."""
        return self.n_threads // self.group_size

    def group_of(self, thread_id: int) -> int:
        """Group index of one thread."""
        return thread_id // self.group_size

    def build(self, djvm: DJVM, *, placement: str = "block") -> None:
        """Define classes, allocate the object graph, spawn threads."""
        self._spawn(djvm, placement)
        cls = djvm.registry.define("SynObject", self.object_size)
        self.group_pool = []
        for g in range(self.n_groups):
            home = self.node_of(g * self.group_size)
            self.group_pool.append(
                [
                    djvm.allocate(cls, home, site="syn.group").obj_id
                    for _ in range(self.objects_per_group)
                ]
            )
        self.private_pool = []
        for t in range(self.n_threads):
            home = self.node_of(t)
            self.private_pool.append(
                [
                    djvm.allocate(cls, home, site="syn.private").obj_id
                    for _ in range(self.private_per_thread)
                ]
            )
        self.global_pool = [
            djvm.allocate(cls, self.node_of(0), site="syn.global").obj_id
            for _ in range(self.global_objects)
        ]

    def program(self, thread_id: int):
        """The op stream for one thread."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        rng = seeded_rng(self.seed, "group_sharing", f"t{thread_id}")
        group = self.group_of(thread_id)
        barrier_seq = 0
        anchor = self.group_pool[group][0]
        yield P.call("Syn.run", n_slots=4, refs=[(0, anchor)])
        is_producer = thread_id % self.group_size == 0
        for _round in range(self.rounds):
            yield P.call("Syn.round", n_slots=3, refs=[(0, anchor)])
            for obj_id in self.group_pool[group]:
                yield P.read(obj_id, repeat=self.reads_per_object)
                if self.group_writes and is_producer:
                    yield P.write(obj_id)
            for obj_id in self.private_pool[thread_id]:
                yield P.read(obj_id, repeat=self.reads_per_object)
                yield P.write(obj_id)
            for obj_id in self.global_pool:
                yield P.read(obj_id)
            yield P.compute(int(rng.integers(5_000, 10_000)))
            yield P.ret()
            yield P.barrier(barrier_seq)
            barrier_seq += 1
        yield P.ret()

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------

    def true_tcm(self) -> np.ndarray:
        """Exact shared bytes per thread pair (diagonal zeroed)."""
        n = self.n_threads
        tcm = np.zeros((n, n))
        group_bytes = self.objects_per_group * self.object_size
        global_bytes = self.global_objects * self.object_size
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                tcm[i, j] = global_bytes
                if self.group_of(i) == self.group_of(j):
                    tcm[i, j] += group_bytes
        return tcm


class UniformSharingWorkload(Workload):
    """Every thread reads every shared object — a flat TCM."""

    def __init__(
        self,
        n_threads: int = 4,
        *,
        n_objects: int = 128,
        object_size: int = 64,
        rounds: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        self.n_objects = n_objects
        self.object_size = object_size
        self.rounds = rounds
        self.pool: list[int] = []

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        return WorkloadSpec(
            name="UniformSharing",
            data_set=f"{self.n_objects} objects shared by all",
            rounds=self.rounds,
            granularity="Synthetic",
            object_size=f"{self.object_size} bytes",
        )

    def build(self, djvm: DJVM, *, placement: str = "block") -> None:
        """Define classes, allocate the object graph, spawn threads."""
        self._spawn(djvm, placement)
        cls = djvm.registry.define("UniObject", self.object_size)
        self.pool = [
            djvm.allocate(cls, i % len(djvm.cluster)).obj_id for i in range(self.n_objects)
        ]

    def program(self, thread_id: int):
        """The op stream for one thread."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        barrier_seq = 0
        yield P.call("Uni.run", n_slots=2, refs=[(0, self.pool[0])])
        for _round in range(self.rounds):
            for obj_id in self.pool:
                yield P.read(obj_id)
            yield P.barrier(barrier_seq)
            barrier_seq += 1
        yield P.ret()

    def true_tcm(self) -> np.ndarray:
        """Exact ground-truth shared bytes per thread pair."""
        n = self.n_threads
        tcm = np.full((n, n), float(self.n_objects * self.object_size))
        np.fill_diagonal(tcm, 0.0)
        return tcm


class RacyCounterWorkload(Workload):
    """A shared counter incremented by every thread — with or without a
    lock.

    Each round, every thread reads and writes the one shared counter
    object.  With ``locked=True`` the read-modify-write runs inside
    ``acquire(0)``/``release(0)``, so mutual exclusion's release->acquire
    edges order every conflicting pair and the race detector must stay
    silent.  With ``locked=False`` the counter accesses have no
    synchronization between them: the trailing per-round barrier orders
    *rounds*, not the accesses within one round, so the first round
    already contains a write-write (and write-read) race — the seeded
    ground truth the ``race`` check gate asserts the detector catches.

    Each thread also reads a shared read-only config object (exercising
    the detector's concurrent-reader escalation without a race) and
    writes a private scratch object (never shared, never reported).
    """

    def __init__(
        self,
        n_threads: int = 2,
        *,
        locked: bool = False,
        rounds: int = 2,
        increments_per_round: int = 3,
        object_size: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        if n_threads < 2:
            raise ValueError("a race needs at least two threads")
        self.locked = locked
        self.rounds = rounds
        self.increments_per_round = increments_per_round
        self.object_size = object_size
        self.counter_id: int | None = None
        self.config_id: int | None = None
        self.scratch_ids: list[int] = []

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        mode = "locked" if self.locked else "racy"
        return WorkloadSpec(
            name=f"RacyCounter[{mode}]",
            data_set=f"{self.n_threads} threads, 1 shared counter",
            rounds=self.rounds,
            granularity="Synthetic",
            object_size=f"{self.object_size} bytes",
        )

    def build(self, djvm: DJVM, *, placement: str = "round_robin") -> None:
        """Define classes, allocate counter/config/scratch, spawn threads."""
        self._spawn(djvm, placement)
        cls = djvm.registry.define("Counter", self.object_size)
        self.counter_id = djvm.allocate(cls, self.node_of(0), site="racy.counter").obj_id  # shared
        self.config_id = djvm.allocate(cls, self.node_of(0), site="racy.config").obj_id
        self.scratch_ids = [
            djvm.allocate(cls, self.node_of(t), site="racy.scratch").obj_id
            for t in range(self.n_threads)
        ]

    def program(self, thread_id: int):
        """The op stream for one thread."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        assert self.counter_id is not None, "build() must run first"
        rng = seeded_rng(self.seed, "racy_counter", f"t{thread_id}")
        yield P.call("Counter.run", n_slots=2, refs=[(0, self.counter_id)])
        yield P.read(self.config_id)
        for round_no in range(self.rounds):
            for _ in range(self.increments_per_round):
                if self.locked:
                    yield P.acquire(0)
                yield P.read(self.counter_id)
                yield P.compute(int(rng.integers(500, 1_500)))
                yield P.write(self.counter_id)  # simlint: disable=SIM012 (the seeded race; the locked variant orders it at runtime)
                if self.locked:
                    yield P.release(0)
            yield P.write(self.scratch_ids[thread_id])
            yield P.barrier(round_no)
        yield P.ret()
