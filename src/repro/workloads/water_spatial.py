"""Water-Spatial molecular dynamics (paper benchmark 3).

Molecules live in a 3D grid of cells (spatial decomposition); each
thread owns a contiguous slab of cells and each round computes
interactions between its molecules and those in the 26-neighbourhood
(within cutoff), then integrates positions — molecules drift between
cells over time, giving the "evolving load distribution" the paper
cites.  Sharing is medium-grained (each molecule ~512 bytes across its
scalar part and coordinate array) with a near-neighbour 3D-box pattern.

Object model:

* ``Molecule`` (424 B) — scalar part; refs its coordinate array.
* ``double[]`` (9 doubles = 72 B payload) — per-molecule atom coords.
* ``Cell`` (64 B) — one grid box; refs its ``Molecule[]`` list.
* ``Molecule[]`` — per-cell membership array, rewritten when molecules
  move between cells.

Synchronization discipline (mirrors the SPLASH-2 original): the force
phase only *reads* shared state — each thread computes its own
molecules' forces from neighbour positions into thread-private
accumulators (not modelled as shared accesses) — and positions are
written once per round, in the integrate phase after the force barrier.
Cell membership arrays are likewise updated only by the cell's owning
thread (departures by the old cell's owner, arrivals by the new cell's
owner), so every conflicting access pair is separated by a barrier and
the workload is data-race-free under the happens-before model of
:mod:`repro.checks.racedetect`.
"""

from __future__ import annotations

import numpy as np

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.util.rng import seeded_rng
from repro.workloads.base import Workload, WorkloadSpec

#: simulated cost of one molecule-pair interaction (all atom-atom force
#: terms of a water potential), ns.  Calibrated against the paper's
#: Table II single-thread baseline (~29 s for 512 molecules x 5 rounds).
PAIR_COMPUTE_NS = 87_000
#: fraction of a cell's linear size a molecule moves per round (keeps
#: migrations between cells occasional but present).
DRIFT_STEP = 0.18


class WaterSpatialWorkload(Workload):
    """Spatial-decomposition water simulation."""

    def __init__(
        self,
        n_molecules: int = 512,
        rounds: int = 5,
        n_threads: int = 8,
        *,
        grid: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        n_cells = grid**3
        if n_cells < n_threads:
            raise ValueError(f"{n_cells} cells cannot feed {n_threads} threads")
        self.n_molecules = n_molecules
        self.rounds = rounds
        self.grid = grid
        self.mol_ids: list[int] = []
        self.coord_ids: list[int] = []
        self.cell_obj_ids: list[int] = []
        self.cell_arr_ids: list[int] = []
        #: per-round: cell membership (cell -> molecule indices) and moves
        #: (departing-cell owner -> list of (mol, from_cell, to_cell)).
        self._rounds_members: list[list[list[int]]] = []
        self._rounds_moves: list[dict[int, list[tuple[int, int, int]]]] = []
        #: per-round: arrival updates (new-cell owner -> list of new_cell)
        #: — membership arrays are only ever written by their owning
        #: thread, so cross-slab moves stay race-free.
        self._rounds_arrivals: list[dict[int, list[int]]] = []
        #: round-invariant op prototypes, precomputed by build() and
        #: shared across rounds/threads (op tuples are immutable).
        self._neighbour_lists: list[list[int]] = []
        self._op_cell_read: list[tuple] = []
        self._op_mol_read1: list[tuple] = []
        self._op_mol_write1: list[tuple] = []
        self._op_coord_write: list[tuple] = []
        self._op_cell_arr_write1: list[tuple] = []

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        return WorkloadSpec(
            name="Water-Spatial",
            data_set=f"{self.n_molecules} molecules",
            rounds=self.rounds,
            granularity="Medium",
            object_size="each molecule about 512 bytes",
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def cell_index(self, c: tuple[int, int, int]) -> int:
        """Flatten 3D cell coordinates to an index."""
        x, y, z = c
        return (x * self.grid + y) * self.grid + z

    def cell_coords(self, idx: int) -> tuple[int, int, int]:
        """Unflatten a cell index to 3D coordinates."""
        z = idx % self.grid
        y = (idx // self.grid) % self.grid
        x = idx // (self.grid * self.grid)
        return x, y, z

    def neighbours(self, idx: int) -> list[int]:
        """The 26-neighbourhood (non-periodic) of a cell, plus itself."""
        x, y, z = self.cell_coords(idx)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nx, ny, nz = x + dx, y + dy, z + dz
                    if 0 <= nx < self.grid and 0 <= ny < self.grid and 0 <= nz < self.grid:
                        out.append(self.cell_index((nx, ny, nz)))
        return out

    def cells_of(self, thread_id: int) -> range:
        """Contiguous slab of cells owned by one thread (x-major order =
        slabs along the x axis)."""
        return self.block_range(self.grid**3, thread_id, self.n_threads)

    def owner_of_cell(self, idx: int) -> int:
        """Thread owning a grid cell."""
        n_cells = self.grid**3
        for t in range(self.n_threads):
            if idx in self.cells_of(t):
                return t
        raise IndexError(f"cell {idx} out of range 0..{n_cells - 1}")

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, djvm: DJVM, *, placement: str = "block") -> None:
        """Define classes, allocate the object graph, spawn threads."""
        self._spawn(djvm, placement)
        reg = djvm.registry
        mol_cls = reg.define("Molecule", 424)
        coord_cls = reg.define("double[]", is_array=True, element_size=8)
        cell_cls = reg.define("WSCell", 64)
        marr_cls = reg.define("Molecule[]", is_array=True, element_size=4)

        n_cells = self.grid**3
        rng = seeded_rng(self.seed, "water_spatial", "positions")
        # Continuous positions in [0, grid)^3; derive cell membership.
        pos = rng.uniform(0, self.grid, size=(self.n_molecules, 3))
        # A slow, spatially coherent drift field: molecules flow towards
        # +x over the run, shifting load between thread slabs.
        drift = np.array([DRIFT_STEP, 0.0, 0.0])
        jitter_rng = seeded_rng(self.seed, "water_spatial", "jitter")

        def membership(p: np.ndarray) -> list[list[int]]:
            cells: list[list[int]] = [[] for _ in range(n_cells)]
            idx = np.clip(p.astype(np.int64), 0, self.grid - 1)
            for m in range(self.n_molecules):
                cells[self.cell_index((int(idx[m, 0]), int(idx[m, 1]), int(idx[m, 2])))].append(m)
            return cells

        members0 = membership(pos)

        # Molecules homed at the node of the thread owning their initial
        # cell; allocated in cell order (a locality-aware initialization).
        mol_home = [0] * self.n_molecules
        for c in range(n_cells):
            owner = self.owner_of_cell(c)
            for m in members0[c]:
                mol_home[m] = self.node_of(owner)
        self.mol_ids = [0] * self.n_molecules
        self.coord_ids = [0] * self.n_molecules
        for c in range(n_cells):
            for m in members0[c]:
                coords = djvm.allocate(coord_cls, mol_home[m], length=9, site="ws.coords")
                mol = djvm.allocate(mol_cls, mol_home[m], refs=[coords.obj_id], site="ws.mol")
                self.mol_ids[m] = mol.obj_id
                self.coord_ids[m] = coords.obj_id
        for c in range(n_cells):
            home = self.node_of(self.owner_of_cell(c))
            arr = djvm.allocate(
                marr_cls,
                home,
                length=max(len(members0[c]), 1),
                refs=[self.mol_ids[m] for m in members0[c]],
                site="ws.cell",
            )
            cell = djvm.allocate(cell_cls, home, refs=[arr.obj_id], site="ws.cell")
            self.cell_arr_ids.append(arr.obj_id)
            self.cell_obj_ids.append(cell.obj_id)

        # Precompute per-round membership and inter-cell moves.
        self._rounds_members = []
        self._rounds_moves = []
        self._rounds_arrivals = []
        members = members0
        for _round in range(self.rounds):
            self._rounds_members.append([list(ms) for ms in members])
            pos = pos + drift + 0.05 * jitter_rng.standard_normal(pos.shape)
            pos = np.clip(pos, 0.0, self.grid - 1e-9)
            new_members = membership(pos)
            cell_of_old = {m: c for c, ms in enumerate(members) for m in ms}
            cell_of_new = {m: c for c, ms in enumerate(new_members) for m in ms}
            moves: dict[int, list[tuple[int, int, int]]] = {}
            arrivals: dict[int, list[int]] = {}
            for m in range(self.n_molecules):
                old_c, new_c = cell_of_old[m], cell_of_new[m]
                if old_c != new_c:
                    owner = self.owner_of_cell(old_c)
                    moves.setdefault(owner, []).append((m, old_c, new_c))
                    receiver = self.owner_of_cell(new_c)
                    arrivals.setdefault(receiver, []).append(new_c)
            self._rounds_moves.append(moves)
            self._rounds_arrivals.append(arrivals)
            members = new_members

        # Round-invariant prototypes for _generate.
        self._neighbour_lists = [self.neighbours(c) for c in range(n_cells)]
        self._op_cell_read = [(P.OP_READ, cid, 1, 1, 0) for cid in self.cell_obj_ids]
        self._op_mol_read1 = [(P.OP_READ, mid, 1, 1, 0) for mid in self.mol_ids]
        self._op_mol_write1 = [(P.OP_WRITE, mid, 1, 1, 0) for mid in self.mol_ids]
        self._op_coord_write = [(P.OP_WRITE, cid, 9, 1, 0) for cid in self.coord_ids]
        self._op_cell_arr_write1 = [(P.OP_WRITE, aid, 1, 1, 0) for aid in self.cell_arr_ids]

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------

    def program(self, thread_id: int):
        """The thread's op list (pre-built; op tuples are emitted inline
        so repeated builds avoid per-op constructor calls)."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        own_cells = list(self.cells_of(thread_id))
        barrier_seq = 0
        anchor_cell = self.cell_obj_ids[own_cells[0]]
        cell_obj_ids = self.cell_obj_ids
        cell_arr_ids = self.cell_arr_ids
        mol_ids = self.mol_ids
        coord_ids = self.coord_ids
        neighbour_lists = self._neighbour_lists
        cell_read = self._op_cell_read
        mol_read1 = self._op_mol_read1
        mol_write1 = self._op_mol_write1
        coord_write = self._op_coord_write
        cell_arr_write1 = self._op_cell_arr_write1
        ops: list[tuple] = []
        add = ops.append
        add((P.OP_CALL, "Water.run", 6, ((0, anchor_cell),)))
        for rnd in range(self.rounds):
            members = self._rounds_members[rnd]
            # --- force phase -------------------------------------------
            add((P.OP_CALL, "Water.interf", 5, ((0, anchor_cell),)))
            for c in own_cells:
                own_mols = members[c]
                if not own_mols:
                    continue
                n_own = len(own_mols)
                add((P.OP_CALL, "Water.cellPairs", 3, ((0, cell_obj_ids[c]),)))
                add(cell_read[c])
                add((P.OP_READ, cell_arr_ids[c], max(n_own, 1), 1, 0))
                pair_count = 0
                for nb in neighbour_lists[c]:
                    nb_mols = members[nb]
                    if not nb_mols:
                        continue
                    if nb != c:
                        add(cell_read[nb])
                        add((P.OP_READ, cell_arr_ids[nb], max(len(nb_mols), 1), 1, 0))
                        reps = n_own
                    else:
                        reps = max(n_own - 1, 1)
                    for m in nb_mols:
                        # Each neighbour molecule is read (scalar + coords)
                        # once per own molecule pairing; aggregate repeats.
                        add((P.OP_READ, mol_ids[m], 1, reps, 0))
                        add((P.OP_READ, coord_ids[m], 9, reps, 0))
                        pair_count += reps
                # Forces accumulate into thread-private storage (owner
                # computes all of its molecules' terms), so the force
                # phase performs no shared writes: neighbour coordinate
                # reads here race-freely precede the integrate-phase
                # writes on the other side of the barrier.
                add((P.OP_COMPUTE, pair_count * PAIR_COMPUTE_NS))
                add((P.OP_RET,))
            add((P.OP_RET,))
            add((P.OP_BARRIER, barrier_seq))
            barrier_seq += 1

            # --- integration + cell reassignment -------------------------
            add((P.OP_CALL, "Water.advance", 4, ((0, anchor_cell),)))
            for c in own_cells:
                for m in members[c]:
                    add(mol_read1[m])
                    add(coord_write[m])
            # Membership arrays are written only by their owning thread:
            # the departing side drops the molecule from its own cell's
            # array, the receiving side appends it to its own — two
            # single-owner writes instead of one thread writing both.
            for m, old_c, _new_c in self._rounds_moves[rnd].get(thread_id, []):
                add(cell_arr_write1[old_c])
                add(mol_write1[m])
            for new_c in self._rounds_arrivals[rnd].get(thread_id, []):
                add(cell_arr_write1[new_c])
            add((P.OP_RET,))
            add((P.OP_BARRIER, barrier_seq))
            barrier_seq += 1
        add((P.OP_RET,))
        return ops
