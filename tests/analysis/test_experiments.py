"""Tests for the shared experiment drivers."""

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.core.accuracy import accuracy
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload, SORWorkload


def group_factory():
    return GroupSharingWorkload(n_threads=8, group_size=2, rounds=3, seed=1)


FAST = CostModel.fast_test()


class TestRunners:
    def test_baseline_has_no_profiling_cost(self):
        run = E.run_baseline(group_factory, 4, costs=FAST)
        assert run.result.total_cpu.profiling_ns == 0
        assert run.suite is None

    def test_correlation_run_produces_tcm(self):
        run = E.run_with_correlation(group_factory, 4, rate=4, costs=FAST)
        tcm = run.suite.tcm()
        assert tcm.shape == (8, 8)
        assert tcm.sum() > 0

    def test_sticky_run_disables_correlation(self):
        run = E.run_with_sticky_profiling(group_factory, 4, costs=FAST)
        assert run.suite.access_profiler is None
        assert run.suite.stack_sampler is not None
        assert run.suite.footprinter is not None


class TestOfflineRateFiltering:
    def test_full_rate_filter_reproduces_live_tcm(self):
        """Filtering the full-sampling OAL stream at rate 'full' must give
        exactly the live profiler's map."""
        batches, gos, n, run = E.collect_full_batches(group_factory, 4, costs=FAST)
        offline = E.tcm_at_rate(batches, gos, n, "full")
        live = run.suite.tcm()
        assert np.allclose(offline, live)

    def test_offline_filter_matches_rerun_at_rate(self):
        """The determinism claim behind the sweep optimization: filtering
        offline at rate r equals actually re-running the profiler at r."""
        batches, gos, n, _ = E.collect_full_batches(group_factory, 4, costs=FAST)
        offline = E.tcm_at_rate(batches, gos, n, 2)
        rerun = E.run_with_correlation(group_factory, 4, rate=2, costs=FAST)
        assert np.allclose(offline, rerun.suite.tcm())

    def test_accuracy_curves_shape(self):
        curves = E.accuracy_curves(
            group_factory, 4, rates=(16, 4, 1), costs=FAST
        )
        assert curves.rates == [16, 4, 1]
        assert len(curves.absolute_abs) == 3
        assert all(0 <= a <= 1 for a in curves.absolute_abs)
        # The finest rate's relative accuracy compares against full.
        assert curves.relative_abs[0] == pytest.approx(curves.absolute_abs[0])


class TestFalseSharingMaps:
    def test_induced_map_shows_phantom_sharing(self):
        """Private per-thread objects packed into shared pages: the
        inherent map is block-diagonal, the induced map is denser."""
        factory = lambda: GroupSharingWorkload(
            n_threads=8, group_size=2, rounds=2, object_size=64, seed=2
        )
        maps = E.false_sharing_maps(factory, 4, costs=FAST)
        inherent_nonzero = (maps.inherent > 0).sum()
        induced_nonzero = (maps.induced > 0).sum()
        assert induced_nonzero >= inherent_nonzero
        assert maps.false_sharing_degree > 1.0
