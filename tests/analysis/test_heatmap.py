"""Tests for heatmap rendering and block contrast."""

import math

import numpy as np
import pytest

from repro.analysis.heatmap import RAMP, block_contrast, render_heatmap


class TestRenderHeatmap:
    def test_shape_and_title(self):
        out = render_heatmap(np.eye(4), title="map")
        lines = out.splitlines()
        assert lines[0] == "map"
        assert len(lines) == 5
        assert all(len(line) == 4 for line in lines[1:])

    def test_peak_gets_darkest_glyph(self):
        m = np.array([[0.0, 1.0], [0.0, 0.0]])
        out = render_heatmap(m).splitlines()
        assert out[0][1] == RAMP[-1]
        assert out[0][0] == RAMP[0]

    def test_zero_matrix_all_blank(self):
        out = render_heatmap(np.zeros((3, 3)))
        assert set(out.replace("\n", "")) == {RAMP[0]}

    def test_downsampling(self):
        m = np.ones((32, 32))
        out = render_heatmap(m, width=8).splitlines()
        assert len(out) == 8
        assert len(out[0]) == 8

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 3)))


class TestBlockContrast:
    def test_pure_blocks(self):
        m = np.array(
            [
                [0.0, 10.0, 0.0, 0.0],
                [10.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 10.0],
                [0.0, 0.0, 10.0, 0.0],
            ]
        )
        assert math.isinf(block_contrast(m, [0, 0, 1, 1]))

    def test_flat_map_contrast_one(self):
        m = np.full((4, 4), 5.0)
        np.fill_diagonal(m, 0.0)
        assert block_contrast(m, [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_mismatched_groups_rejected(self):
        with pytest.raises(ValueError):
            block_contrast(np.zeros((4, 4)), [0, 1])

    def test_zero_map(self):
        assert block_contrast(np.zeros((4, 4)), [0, 0, 1, 1]) == 1.0
