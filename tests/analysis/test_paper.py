"""Consistency checks on the transcribed paper numbers.

These guard against transcription typos: internal relationships the
published tables must satisfy (structure, ranges, cross-table agreement)
rather than re-deriving the values."""

from repro.analysis.paper import FIG1, TABLE1, TABLE2, TABLE3, TABLE4, TABLE5


BENCHMARKS = {"SOR", "Barnes-Hut", "Water-Spatial"}


class TestStructure:
    def test_all_tables_cover_all_benchmarks(self):
        for table in (TABLE1, TABLE2, TABLE3, TABLE4, TABLE5):
            assert set(table) == BENCHMARKS

    def test_fig1_matches_paper_config(self):
        assert FIG1 == {"threads": 32, "bodies": 4096, "distance": 7.0}


class TestInternalConsistency:
    def test_table2_overheads_small(self):
        """The paper's O1 claim: minimal overhead, bounded by ~1.2%."""
        for name, row in TABLE2.items():
            for rate, pct in row["overhead_pct"].items():
                assert -2.0 < pct < 2.0, (name, rate)

    def test_table3_full_exceeds_sampled(self):
        for name, row in TABLE3.items():
            pcts = row["oal_volume_pct"]
            if 1 in pcts:
                assert pcts["full"] > pcts[1]
            tcm = row["tcm_ms"]
            if 1 in tcm:
                assert tcm["full"] > tcm[1]

    def test_table3_sor_has_highest_full_oal_share(self):
        """The paper singles SOR out: '20% more bandwidth for
        transferring OALs than the other two applications'."""
        shares = {n: row["oal_volume_pct"]["full"] for n, row in TABLE3.items()}
        assert shares["SOR"] > shares["Barnes-Hut"] > shares["Water-Spatial"]

    def test_table4_accuracies_in_published_range(self):
        """'all classes are consistently over 92% accurate'."""
        for name, classes in TABLE4.items():
            for cname, row in classes.items():
                assert 92.0 <= row["accuracy_pct"] <= 100.0, (name, cname)

    def test_table4_sor_perfect(self):
        assert TABLE4["SOR"]["double[]"]["accuracy_pct"] == 100.0

    def test_table5_footprinting_dominates_stack_sampling(self):
        """Per the paper, footprinting (C2) is the expensive component."""
        for name, row in TABLE5.items():
            max_stack = max(row["stack_pct"].values())
            max_fp = max(row["footprint_pct"].values())
            assert max_fp > max_stack, name

    def test_table5_lazy_beats_immediate_at_4ms(self):
        """'Lazy frame extraction and comparison performs better than the
        immediate counterpart in almost all cases except one' — the
        exception being Barnes-Hut at 16 ms."""
        for name, row in TABLE5.items():
            assert row["stack_pct"][("lazy", 4)] <= row["stack_pct"][("immediate", 4)]
        # The published exception:
        assert (
            TABLE5["Barnes-Hut"]["stack_pct"][("lazy", 16)]
            > TABLE5["Barnes-Hut"]["stack_pct"][("immediate", 16)]
        )

    def test_baselines_agree_with_table1_workload_scale(self):
        """Coarse sanity: BH (4K bodies, compute-heavy) has the largest
        single-thread baseline in both Tables II and V."""
        assert TABLE2["Barnes-Hut"]["baseline_ms"] == max(
            row["baseline_ms"] for row in TABLE2.values()
        )
        assert TABLE5["Barnes-Hut"]["baseline_ms"] == max(
            row["baseline_ms"] for row in TABLE5.values()
        )
