"""Tests for paper-style table rendering."""

import pytest

from repro.analysis.report import Table, format_overhead, format_pct


class TestFormatPct:
    def test_positive(self):
        assert format_pct(0.0112) == "(1.12%)"

    def test_negative_keeps_sign(self):
        assert format_pct(-0.0115) == "(-1.15%)"

    def test_unsigned(self):
        assert format_pct(0.5, signed=False) == "(50.00%)"


class TestFormatOverhead:
    def test_paper_cell_shape(self):
        # Table II Barnes-Hut full sampling: 53844 (1.12%) over 53250.
        assert format_overhead(53250, 53844) == "53844 (1.12%)"

    def test_negative_overhead(self):
        assert format_overhead(53250, 52636) == "52636 (-1.15%)"

    def test_zero_base(self):
        assert "n/a" in format_overhead(0, 100)


class TestTable:
    def test_render_aligns_columns(self):
        t = Table("T", ["name", "value"])
        t.add_row("a", 1)
        t.add_row("longer-name", 22)
        out = t.render().splitlines()
        assert out[0] == "T"
        assert "name" in out[1] and "value" in out[1]
        assert set(out[2]) <= {"-", "+"}
        # All rows align to the same width.
        assert len(out[3]) == len(out[4])

    def test_wrong_cell_count_rejected(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")
