"""Tests for the dependency-free SVG renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.svgplot import heatmap, line_chart, save_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def chart(self, **kw):
        return line_chart(
            {"Absolute/ABS": [1.0, 0.98, 0.95], "Relative/ABS": [1.0, 0.97, 0.93]},
            ["16X", "4X", "1X"],
            title="accuracy",
            **kw,
        )

    def test_valid_xml(self):
        root = parse(self.chart())
        assert root.tag.endswith("svg")

    def test_series_rendered(self):
        svg = self.chart()
        assert svg.count("<polyline") == 2
        assert "Absolute/ABS" in svg and "Relative/ABS" in svg
        assert "16X" in svg and "1X" in svg

    def test_title_escaped(self):
        svg = line_chart({"a<b": [0.5]}, ["x"], title='t & "q"')
        parse(svg)  # must still be valid XML
        assert "a&lt;b" in svg and "t &amp;" in svg

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [1.0, 2.0]}, ["only-one"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, [])

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [0.5]}, ["x"], y_range=(1.0, 1.0))

    def test_values_clamped_into_plot(self):
        svg = line_chart({"s": [5.0, -5.0]}, ["a", "b"], y_range=(0, 1))
        root = parse(svg)
        for poly in root.iter("{http://www.w3.org/2000/svg}polyline"):
            for pair in poly.attrib["points"].split():
                _x, y = pair.split(",")
                assert 0 <= float(y) <= 400


class TestHeatmap:
    def test_valid_xml_and_cell_count(self):
        svg = heatmap(np.eye(4), title="m")
        root = parse(svg)
        rects = list(root.iter("{http://www.w3.org/2000/svg}rect"))
        assert len(rects) == 16 + 1  # cells + background

    def test_peak_is_black_zero_is_white(self):
        svg = heatmap(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert "rgb(0,0,0)" in svg
        assert "rgb(255,255,255)" in svg

    def test_zero_matrix_all_white(self):
        svg = heatmap(np.zeros((3, 3)))
        assert "rgb(0,0,0)" not in svg

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 3)))


class TestSave:
    def test_save_creates_parents(self, tmp_path):
        out = save_svg(heatmap(np.eye(2)), tmp_path / "figs" / "map.svg")
        assert out.exists()
        parse(out.read_text())
