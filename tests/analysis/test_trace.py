"""Tests for profile trace recording and offline replay."""

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.analysis.trace import FORMAT_VERSION, ProfileTrace, record_trace
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload

FAST = CostModel.fast_test()


def factory(seed=1):
    return GroupSharingWorkload(n_threads=8, group_size=2, rounds=3, seed=seed)


@pytest.fixture(scope="module")
def trace():
    return record_trace(lambda: factory(), 4, costs=FAST)


class TestCapture:
    def test_metadata_covers_logged_objects(self, trace):
        logged = {e.obj_id for b in trace.batches for e in b.entries}
        assert set(trace.objects) == logged
        for cid, _seq, _len in trace.objects.values():
            assert cid in trace.classes

    def test_full_tcm_matches_live(self, trace):
        batches, gos, n, run = E.collect_full_batches(lambda: factory(), 4, costs=FAST)
        assert np.allclose(trace.full_tcm(), run.suite.tcm())


class TestRoundTrip:
    def test_json_roundtrip(self, trace):
        clone = ProfileTrace.from_dict(trace.to_dict())
        assert np.allclose(clone.full_tcm(), trace.full_tcm())
        assert clone.n_threads == trace.n_threads
        assert clone.classes == trace.classes

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "run.trace"
        trace.save(path)
        assert np.allclose(ProfileTrace.load(path).full_tcm(), trace.full_tcm())

    def test_gzip_roundtrip_smaller(self, trace, tmp_path):
        plain = tmp_path / "run.trace"
        packed = tmp_path / "run.trace.gz"
        trace.save(plain)
        trace.save(packed)
        assert packed.stat().st_size < plain.stat().st_size
        assert np.allclose(ProfileTrace.load(packed).full_tcm(), trace.full_tcm())

    def test_version_check(self, trace):
        data = trace.to_dict()
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            ProfileTrace.from_dict(data)


class TestOfflineReplay:
    def test_replay_at_rate_matches_live_rerun(self, trace):
        offline = trace.tcm_at_rate(2)
        rerun = E.run_with_correlation(lambda: factory(), 4, rate=2, costs=FAST)
        assert np.allclose(offline, rerun.suite.tcm())

    def test_full_rate_replay_is_identity(self, trace):
        assert np.allclose(trace.tcm_at_rate("full"), trace.full_tcm())

    def test_coarser_rates_stay_accurate(self, trace):
        from repro.core.accuracy import accuracy

        full = trace.full_tcm()
        assert accuracy(trace.tcm_at_rate(4), full) > 0.8


class TestDrift:
    def test_same_seed_zero_drift(self, trace):
        again = record_trace(lambda: factory(), 4, costs=FAST)
        assert trace.drift_from(again) == pytest.approx(0.0)

    def test_different_pattern_nonzero_drift(self, trace):
        other = record_trace(
            lambda: GroupSharingWorkload(
                n_threads=8, group_size=4, rounds=3, seed=9
            ),
            4,
            costs=FAST,
        )
        assert trace.drift_from(other) > 0.1

    def test_shape_mismatch_rejected(self, trace):
        small = record_trace(
            lambda: GroupSharingWorkload(n_threads=4, group_size=2, rounds=2),
            4,
            costs=FAST,
        )
        with pytest.raises(ValueError, match="thread counts"):
            trace.drift_from(small)
