"""CLI surface of ``python -m repro.checks``."""

from __future__ import annotations

from repro.checks.__main__ import main, run_lint, run_race


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert run_lint([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finding_exits_nonzero(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert run_lint([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SIM006" in out and "dirty.py:1:" in out


def test_main_lint_subcommand(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x={}):\n    return x\n")
    assert main(["lint", str(dirty)]) == 1


def test_main_lint_defaults_to_repo_tree():
    assert main(["lint"]) == 0


def _fake_report():
    from repro.checks.racedetect import AccessSite, RaceReport

    first = AccessSite(thread_id=0, kind="write", interval_id=1, time_ns=10, seq=1)
    second = AccessSite(thread_id=1, kind="read", interval_id=1, time_ns=20, seq=2)
    return RaceReport(
        obj_id=5,
        class_name="Obj",
        kind="write-read",
        first=first,
        second=second,
        evidence="unordered",
    )


def test_race_gate_passes_when_expectations_met(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [
            ("SOR", 100, [], False),
            ("RacyCounter[racy]", 50, [_fake_report()], True),
            ("RacyCounter[locked]", 50, [], False),
        ],
    )
    assert run_race() == 0
    out = capsys.readouterr().out
    assert "seeded race detected" in out and "racecheck: clean" in out


def test_race_gate_fails_on_unexpected_race(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("SOR", 100, [_fake_report()], False)],
    )
    assert run_race() == 1
    assert "unexpected race" in capsys.readouterr().err


def test_race_gate_fails_when_seeded_race_missed(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("RacyCounter[racy]", 50, [], True)],
    )
    assert run_race() == 1
    assert "seeded race NOT detected" in capsys.readouterr().err


def test_simlint_module_entry(tmp_path):
    from repro.checks.simlint import main as simlint_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert simlint_main([str(dirty)]) == 1
