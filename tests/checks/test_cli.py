"""CLI surface of ``python -m repro.checks``."""

from __future__ import annotations

from repro.checks.__main__ import (
    EXIT_LINT,
    EXIT_RACE,
    EXIT_STATIC,
    main,
    run_lint,
    run_race,
    run_static,
)


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert run_lint([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finding_exits_nonzero(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert run_lint([str(dirty)]) == EXIT_LINT
    out = capsys.readouterr().out
    assert "SIM006" in out and "dirty.py:1:" in out


def test_main_lint_subcommand(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x={}):\n    return x\n")
    assert main(["lint", str(dirty)]) == EXIT_LINT


def test_main_lint_defaults_to_repo_tree():
    assert main(["lint"]) == 0


def _fake_report():
    from repro.checks.racedetect import AccessSite, RaceReport

    first = AccessSite(thread_id=0, kind="write", interval_id=1, time_ns=10, seq=1)
    second = AccessSite(thread_id=1, kind="read", interval_id=1, time_ns=20, seq=2)
    return RaceReport(
        obj_id=5,
        class_name="Obj",
        kind="write-read",
        first=first,
        second=second,
        evidence="unordered",
    )


def test_race_gate_passes_when_expectations_met(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [
            ("SOR", 100, [], False),
            ("RacyCounter[racy]", 50, [_fake_report()], True),
            ("RacyCounter[locked]", 50, [], False),
        ],
    )
    assert run_race() == 0
    out = capsys.readouterr().out
    assert "seeded race detected" in out and "racecheck: clean" in out


def test_race_gate_fails_on_unexpected_race(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("SOR", 100, [_fake_report()], False)],
    )
    assert run_race() == EXIT_RACE
    assert "unexpected race" in capsys.readouterr().err


def test_race_gate_fails_when_seeded_race_missed(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("RacyCounter[racy]", 50, [], True)],
    )
    assert run_race() == EXIT_RACE
    assert "seeded race NOT detected" in capsys.readouterr().err


def test_simlint_module_entry(tmp_path):
    from repro.checks.simlint import main as simlint_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert simlint_main([str(dirty)]) == EXIT_LINT


class TestExitCodes:
    """Each failing gate has its own documented exit code."""

    def test_codes_are_distinct(self):
        from repro.checks.__main__ import EXIT_EFFECTS, EXIT_SANITIZE

        codes = {EXIT_LINT, EXIT_SANITIZE, EXIT_RACE, EXIT_STATIC, EXIT_EFFECTS}
        assert codes == {2, 3, 4, 5, 6}

    def test_help_documents_exit_codes(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        for code in ("2", "3", "4", "5", "6"):
            assert code in out


class TestEffectsGate:
    """The ``effects`` subcommand over seeded and clean trees."""

    @staticmethod
    def _tree(tmp_path, body: str):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "clockmod.py").write_text(body)
        return tmp_path / "src"

    BAD = (
        "import time\n\n\n"
        "class Clock:\n"
        "    def tick(self):\n"
        "        self.now_ns = time.perf_counter_ns()\n"
    )

    def test_seeded_violation_exits_6(self, tmp_path, capsys):
        from repro.checks.__main__ import EXIT_EFFECTS, run_effects

        root = self._tree(tmp_path, self.BAD)
        assert run_effects(str(root)) == EXIT_EFFECTS
        out = capsys.readouterr()
        assert "EFF202" in out.out and "finding(s)" in out.err

    def test_suppressed_violation_exits_0(self, tmp_path, capsys):
        from repro.checks.__main__ import run_effects

        root = self._tree(
            tmp_path,
            self.BAD.replace(
                "time.perf_counter_ns()",
                "time.perf_counter_ns()  # effects: disable=EFF202",
            ),
        )
        assert run_effects(str(root)) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_repo_gate_clean_and_writes_json(self, tmp_path, capsys):
        from repro.checks.__main__ import run_effects

        out_json = tmp_path / "effects.json"
        assert main(["effects", "--json", str(out_json)]) == 0
        assert "certified" in capsys.readouterr().out
        import json

        doc = json.loads(out_json.read_text())
        assert doc["version"] == 1 and doc["functions"]

    def test_write_flag_targets_explicit_path(self, tmp_path):
        root = self._tree(tmp_path, "def f(x):\n    return x\n")
        target = tmp_path / "committed.json"
        assert main(["effects", str(root), "--write", str(target)]) == 0
        assert target.is_file()


class TestAllAggregation:
    """``all`` runs every gate, reports every failure, and exits with
    the highest failing code."""

    def test_all_runs_every_gate_and_exits_max(self, monkeypatch, capsys):
        import repro.checks.__main__ as cli

        calls = []

        def fake(name, code):
            def run(*a, **kw):
                calls.append(name)
                return code

            return run

        monkeypatch.setattr(
            cli,
            "ALL_GATES",
            (
                ("lint", fake("lint", cli.EXIT_LINT), cli.EXIT_LINT),
                ("sanitize", fake("sanitize", 0), cli.EXIT_SANITIZE),
                ("race", fake("race", cli.EXIT_RACE), cli.EXIT_RACE),
                ("static", fake("static", 0), cli.EXIT_STATIC),
                ("effects", fake("effects", 0), cli.EXIT_EFFECTS),
            ),
        )
        assert cli.run_all() == cli.EXIT_RACE
        # every gate ran despite the early lint failure
        assert calls == ["lint", "sanitize", "race", "static", "effects"]
        err = capsys.readouterr().err
        assert "lint (exit 2)" in err and "race (exit 4)" in err

    def test_all_clean_exits_zero(self, monkeypatch, capsys):
        import repro.checks.__main__ as cli

        monkeypatch.setattr(
            cli,
            "ALL_GATES",
            tuple((n, lambda: 0, c) for n, _r, c in cli.ALL_GATES),
        )
        assert cli.run_all() == 0
        assert "all 5 gates clean" in capsys.readouterr().out

    def test_crashing_gate_counts_as_failure(self, monkeypatch, capsys):
        import repro.checks.__main__ as cli

        def boom():
            raise RuntimeError("gate exploded")

        monkeypatch.setattr(
            cli,
            "ALL_GATES",
            (("sanitize", boom, cli.EXIT_SANITIZE),),
        )
        assert cli.run_all() == cli.EXIT_SANITIZE
        assert "crashed" in capsys.readouterr().err


class TestStaticGate:
    def test_static_gate_passes_on_bundled_workloads(self, capsys):
        assert run_static(verbose=False) == 0
        assert "static: sound" in capsys.readouterr().out

    def test_static_gate_writes_json(self, tmp_path):
        import json

        out = tmp_path / "static.json"
        assert run_static(str(out), verbose=False) == 0
        doc = json.loads(out.read_text())
        assert "RacyCounter[racy]" in doc
        assert doc["RacyCounter[racy]"]["may_races"]

    def test_static_gate_fails_when_dynamic_uncovered(self, monkeypatch, capsys):
        """An uncovered dynamic report must trip the soundness failure."""
        import repro.checks.runner as runner

        real = runner.run_race_all

        def spiked(*, verbose=True):
            out = real(verbose=verbose)
            return [
                (name, acc, reports + [_fake_report()] if name == "SOR" else reports, exp)
                for name, acc, reports, exp in out
            ]

        monkeypatch.setattr(runner, "run_race_all", spiked)
        assert run_static(verbose=False) == EXIT_STATIC
        assert "UNSOUND" in capsys.readouterr().err
