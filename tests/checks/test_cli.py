"""CLI surface of ``python -m repro.checks``."""

from __future__ import annotations

from repro.checks.__main__ import main, run_lint


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert run_lint([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finding_exits_nonzero(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert run_lint([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "SIM006" in out and "dirty.py:1:" in out


def test_main_lint_subcommand(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x={}):\n    return x\n")
    assert main(["lint", str(dirty)]) == 1


def test_main_lint_defaults_to_repo_tree():
    assert main(["lint"]) == 0


def test_simlint_module_entry(tmp_path):
    from repro.checks.simlint import main as simlint_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert simlint_main([str(dirty)]) == 1
