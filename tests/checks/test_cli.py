"""CLI surface of ``python -m repro.checks``."""

from __future__ import annotations

from repro.checks.__main__ import (
    EXIT_LINT,
    EXIT_RACE,
    EXIT_STATIC,
    main,
    run_lint,
    run_race,
    run_static,
)


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert run_lint([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_finding_exits_nonzero(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert run_lint([str(dirty)]) == EXIT_LINT
    out = capsys.readouterr().out
    assert "SIM006" in out and "dirty.py:1:" in out


def test_main_lint_subcommand(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x={}):\n    return x\n")
    assert main(["lint", str(dirty)]) == EXIT_LINT


def test_main_lint_defaults_to_repo_tree():
    assert main(["lint"]) == 0


def _fake_report():
    from repro.checks.racedetect import AccessSite, RaceReport

    first = AccessSite(thread_id=0, kind="write", interval_id=1, time_ns=10, seq=1)
    second = AccessSite(thread_id=1, kind="read", interval_id=1, time_ns=20, seq=2)
    return RaceReport(
        obj_id=5,
        class_name="Obj",
        kind="write-read",
        first=first,
        second=second,
        evidence="unordered",
    )


def test_race_gate_passes_when_expectations_met(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [
            ("SOR", 100, [], False),
            ("RacyCounter[racy]", 50, [_fake_report()], True),
            ("RacyCounter[locked]", 50, [], False),
        ],
    )
    assert run_race() == 0
    out = capsys.readouterr().out
    assert "seeded race detected" in out and "racecheck: clean" in out


def test_race_gate_fails_on_unexpected_race(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("SOR", 100, [_fake_report()], False)],
    )
    assert run_race() == EXIT_RACE
    assert "unexpected race" in capsys.readouterr().err


def test_race_gate_fails_when_seeded_race_missed(monkeypatch, capsys):
    import repro.checks.runner as runner

    monkeypatch.setattr(
        runner,
        "run_race_all",
        lambda verbose=True: [("RacyCounter[racy]", 50, [], True)],
    )
    assert run_race() == EXIT_RACE
    assert "seeded race NOT detected" in capsys.readouterr().err


def test_simlint_module_entry(tmp_path):
    from repro.checks.simlint import main as simlint_main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert simlint_main([str(dirty)]) == EXIT_LINT


class TestExitCodes:
    """Each failing gate has its own documented exit code."""

    def test_codes_are_distinct(self):
        from repro.checks.__main__ import EXIT_SANITIZE

        codes = {EXIT_LINT, EXIT_SANITIZE, EXIT_RACE, EXIT_STATIC}
        assert codes == {2, 3, 4, 5}

    def test_help_documents_exit_codes(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        for code in ("2", "3", "4", "5"):
            assert code in out


class TestStaticGate:
    def test_static_gate_passes_on_bundled_workloads(self, capsys):
        assert run_static(verbose=False) == 0
        assert "static: sound" in capsys.readouterr().out

    def test_static_gate_writes_json(self, tmp_path):
        import json

        out = tmp_path / "static.json"
        assert run_static(str(out), verbose=False) == 0
        doc = json.loads(out.read_text())
        assert "RacyCounter[racy]" in doc
        assert doc["RacyCounter[racy]"]["may_races"]

    def test_static_gate_fails_when_dynamic_uncovered(self, monkeypatch, capsys):
        """An uncovered dynamic report must trip the soundness failure."""
        import repro.checks.runner as runner

        real = runner.run_race_all

        def spiked(*, verbose=True):
            out = real(verbose=verbose)
            return [
                (name, acc, reports + [_fake_report()] if name == "SOR" else reports, exp)
                for name, acc, reports, exp in out
            ]

        monkeypatch.setattr(runner, "run_race_all", spiked)
        assert run_static(verbose=False) == EXIT_STATIC
        assert "UNSOUND" in capsys.readouterr().err
