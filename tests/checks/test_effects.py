"""Interprocedural effect/purity analysis: lattice, rule families on
seeded-violation fixtures, the repo self-check, the ``effects.json``
round trip, and the partitioned kernel's worker certification."""

from __future__ import annotations

import json

import pytest

from repro.checks.effects import (
    EFFECT_NAMES,
    Effect,
    EffectsSummary,
    analyze_package,
    analyze_sources,
)
from repro.checks.effects.summary import SCHEMA_VERSION, build_doc

# ---------------------------------------------------------------------------
# shared fixture scaffolding: a miniature event kernel + engine
# ---------------------------------------------------------------------------

KERNEL = """
class EventKind:
    MESSAGE_DELIVER = 1
    BARRIER_RELEASE = 2
    MIGRATION_CHECK = 3

class EventLoop:
    def __init__(self):
        self.time_ns = 0
        self.threads_by_id = {}
    def schedule(self, kind, time_ns, node, seq, callback=None):
        pass

class Network:
    def send(self, src, dst, payload):
        pass
"""


def report_for(engine_src: str, extra: dict | None = None):
    sources = {"kern": KERNEL, "engine": engine_src}
    if extra:
        sources.update(extra)
    return analyze_sources(sources)


def codes(report) -> list[str]:
    return sorted(f.code for f in report.findings)


# ---------------------------------------------------------------------------
# the lattice and per-function classification
# ---------------------------------------------------------------------------


def test_lattice_order_and_join():
    assert Effect.PURE < Effect.READS_SIM < Effect.WRITES_SIM < Effect.HOST
    assert max(Effect.READS_SIM, Effect.WRITES_SIM) is Effect.WRITES_SIM
    assert set(EFFECT_NAMES) == set(Effect)


def test_function_classification():
    rep = report_for(
        """
import time

def pure_fn(x):
    return x + 1

def reads_fn(obj):
    return obj.field

def writes_fn(obj):
    obj.field = 1

def host_fn():
    return time.time()

def fresh_is_pure():
    out = []
    out.append(1)
    return out
"""
    )
    effects = {q.rsplit(".", 1)[-1]: s.effect() for q, s in rep.summaries.items()}
    assert effects["pure_fn"] is Effect.PURE
    assert effects["reads_fn"] is Effect.READS_SIM
    assert effects["writes_fn"] is Effect.WRITES_SIM
    assert effects["host_fn"] is Effect.HOST
    assert effects["fresh_is_pure"] is Effect.PURE


def test_effect_is_transitive_through_calls():
    rep = report_for(
        """
def leaf(obj):
    obj.field = 1

def caller(obj):
    leaf(obj)
"""
    )
    assert rep.summaries["engine.caller"].effect() is Effect.WRITES_SIM


# ---------------------------------------------------------------------------
# EFF1xx: observer purity
# ---------------------------------------------------------------------------

BAD_OBSERVER = """
import time

class BadObserver:
    def on_access(self, thread, heap):
        heap.records[3].state = "dirty"

class Engine:
    def __init__(self):
        self.sanitizer = BadObserver()
    def step(self, thread, heap):
        self.sanitizer.on_access(thread, heap)
"""


def test_eff102_observer_mutates_engine_state():
    rep = report_for(BAD_OBSERVER)
    assert codes(rep) == ["EFF102"]
    (f,) = rep.findings
    assert "BadObserver.on_access" in f.message
    assert "engine.BadObserver.on_access" in rep.observer_roots


def test_eff101_host_effect_in_observer():
    rep = report_for(
        """
import time

class SleepyObserver:
    def on_access(self, thread, heap):
        time.sleep(0.01)

class Engine:
    def __init__(self):
        self.racedetector = SleepyObserver()
    def step(self, thread, heap):
        self.racedetector.on_access(thread, heap)
"""
    )
    assert codes(rep) == ["EFF101"]


def test_observer_self_writes_allowed():
    rep = report_for(
        """
class GoodObserver:
    def __init__(self):
        self.events = []
        self.count = 0
    def on_access(self, thread, heap):
        self.events.append(thread.thread_id)
        self.count += 1

class Engine:
    def __init__(self):
        self.tracer = GoodObserver()
    def step(self, thread, heap):
        self.tracer.on_access(thread, heap)
"""
    )
    assert rep.findings == []


def test_observer_purity_is_interprocedural():
    """A write reached through a helper call is still charged to the
    observer entry point."""
    rep = report_for(
        """
class SneakyObserver:
    def on_access(self, thread, heap):
        self._helper(heap)
    def _helper(self, heap):
        heap.dirty = True

class Engine:
    def __init__(self):
        self.sanitizer = SneakyObserver()
    def step(self, thread, heap):
        self.sanitizer.on_access(thread, heap)
"""
    )
    assert codes(rep) == ["EFF102"]


def test_self_ns_accounting_is_exempt():
    """The sanctioned self-overhead meter (wall clock folded into
    ``self.self_ns``) does not break observer purity."""
    rep = report_for(
        """
import time

class MeteredObserver:
    def __init__(self):
        self.self_ns = 0
    def on_access(self, thread, heap):
        t0 = time.perf_counter_ns()
        self.self_ns += time.perf_counter_ns() - t0

class Engine:
    def __init__(self):
        self.tracer = MeteredObserver()
    def step(self, thread, heap):
        self.tracer.on_access(thread, heap)
"""
    )
    assert rep.findings == []


def test_collector_lambda_is_observer_root():
    rep = report_for(
        """
class Registry:
    def register_collector(self, fn):
        pass

def bind(reg, engine):
    reg.register_collector(lambda r: engine.counters.update({"x": 1}))
"""
    )
    assert codes(rep) == ["EFF102"]
    assert any("telemetry collector" in how for how in rep.observer_roots.values())


# ---------------------------------------------------------------------------
# EFF2xx: clock separation
# ---------------------------------------------------------------------------


def test_eff201_host_time_into_schedule():
    rep = report_for(
        """
import time
from kern import EventKind

class Engine:
    def __init__(self, kernel):
        self.kernel = kernel
    def step(self):
        now = time.perf_counter_ns()
        self.kernel.schedule(EventKind.MESSAGE_DELIVER, now, 0, 0)
"""
    )
    assert codes(rep) == ["EFF201"]


def test_eff202_host_time_into_clock_field():
    rep = report_for(
        """
import time

class Engine:
    def __init__(self, kernel):
        self.kernel = kernel
    def sync(self):
        self.kernel.now_ns = time.time_ns()
"""
    )
    assert codes(rep) == ["EFF202"]


def test_host_time_taint_crosses_calls():
    """A helper *returning* host time taints its callers' uses."""
    rep = report_for(
        """
import time
from kern import EventKind

def wallclock():
    return time.perf_counter_ns()

class Engine:
    def __init__(self, kernel):
        self.kernel = kernel
    def step(self):
        self.kernel.schedule(EventKind.MESSAGE_DELIVER, wallclock(), 0, 0)
"""
    )
    assert "EFF201" in codes(rep)


def test_simulated_time_is_clean():
    rep = report_for(
        """
from kern import EventKind

class Engine:
    def __init__(self, kernel):
        self.kernel = kernel
    def step(self, delay_ns):
        self.kernel.schedule(
            EventKind.MESSAGE_DELIVER, self.kernel.time_ns + delay_ns, 0, 0
        )
"""
    )
    assert rep.findings == []


# ---------------------------------------------------------------------------
# EFF3xx: partition safety
# ---------------------------------------------------------------------------

WORKER_TMPL = """
from kern import EventKind, Network

class Engine:
    def __init__(self, kernel, network):
        self.kernel = kernel
        self.network = network
        self.threads_by_id = {{}}
    def boot(self):
        self.kernel.schedule(EventKind.{kind}, 10, 0, 0, callback=self._work)
    def _work(self, event):
{body}
"""


def test_eff301_cross_partition_write_in_worker():
    rep = report_for(
        WORKER_TMPL.format(
            kind="MIGRATION_CHECK",
            body='        self.threads_by_id[42].status = "poked"\n',
        )
    )
    assert codes(rep) == ["EFF301"]
    assert rep.worker_roots["engine.Engine._work"]["status"] == "violation"


def test_network_send_mediates_cross_partition_write():
    rep = report_for(
        WORKER_TMPL.format(
            kind="MIGRATION_CHECK",
            body=(
                '        self.threads_by_id[42].status = "poked"\n'
                "        self.network.send(0, 1, event)\n"
            ),
        )
    )
    assert rep.findings == []
    assert rep.worker_roots["engine.Engine._work"]["status"] == "certified"


def test_actor_indexed_write_is_not_foreign():
    rep = report_for(
        WORKER_TMPL.format(
            kind="MIGRATION_CHECK",
            body='        self.threads_by_id[event.actor].status = "ran"\n',
        )
    )
    assert rep.findings == []


def test_barrier_release_callbacks_are_exempt():
    rep = report_for(
        WORKER_TMPL.format(
            kind="BARRIER_RELEASE",
            body='        self.threads_by_id[42].status = "released"\n',
        )
    )
    assert rep.findings == []
    assert rep.worker_roots["engine.Engine._work"]["status"] == "exempt"


def test_eff302_host_effect_in_worker_closure():
    rep = report_for(
        WORKER_TMPL.format(
            kind="MIGRATION_CHECK",
            body="        import_side_effect()\n",
        ).replace(
            "from kern import EventKind, Network",
            "import time\nfrom kern import EventKind, Network\n\n"
            "def import_side_effect():\n    time.sleep(0.01)\n",
        )
    )
    assert "EFF302" in codes(rep)


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------


def test_disable_comment_suppresses_but_documents():
    src = BAD_OBSERVER.replace(
        'heap.records[3].state = "dirty"',
        'heap.records[3].state = "dirty"  # effects: disable=EFF102',
    )
    rep = report_for(src)
    assert rep.findings == []
    assert [f.code for f in rep.suppressed] == ["EFF102"]


def test_disable_all_suppresses():
    src = BAD_OBSERVER.replace(
        'heap.records[3].state = "dirty"',
        'heap.records[3].state = "dirty"  # effects: disable=all',
    )
    rep = report_for(src)
    assert rep.findings == []


def test_disable_other_code_does_not_suppress():
    src = BAD_OBSERVER.replace(
        'heap.records[3].state = "dirty"',
        'heap.records[3].state = "dirty"  # effects: disable=EFF301',
    )
    rep = report_for(src)
    assert codes(rep) == ["EFF102"]


# ---------------------------------------------------------------------------
# effects.json round trip
# ---------------------------------------------------------------------------


def test_summary_round_trip(tmp_path):
    rep = report_for(
        WORKER_TMPL.format(
            kind="MIGRATION_CHECK",
            body='        self.threads_by_id[42].status = "poked"\n',
        )
    )
    doc = build_doc(rep)
    assert doc["version"] == SCHEMA_VERSION
    path = tmp_path / "effects.json"
    path.write_text(json.dumps(doc))

    summary = EffectsSummary.load(path)
    assert summary is not None
    assert summary.worker_status("engine.Engine._work") == "violation"
    assert summary.violations() == ["engine.Engine._work"]
    assert summary.function_effect("engine.Engine._work") == "writes-sim-state"


def test_summary_load_missing_and_bad(tmp_path):
    assert EffectsSummary.load(tmp_path / "nope.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert EffectsSummary.load(bad) is None
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"version": SCHEMA_VERSION + 999}))
    assert EffectsSummary.load(wrong) is None


# ---------------------------------------------------------------------------
# the repo certifies itself
# ---------------------------------------------------------------------------


def test_repo_tree_has_no_unsuppressed_violations():
    rep = analyze_package("src")
    rendered = "\n".join(f.render() for f in rep.findings)
    assert rep.findings == [], f"unsuppressed effect violations:\n{rendered}"
    # the discovery layers actually found the repo's hooks
    assert len(rep.observer_roots) >= 10
    assert any("sanitizer" in how for how in rep.observer_roots.values())
    assert rep.worker_roots, "no worker-dispatched callables discovered"
    assert all(
        entry["status"] in ("certified", "exempt")
        for entry in rep.worker_roots.values()
    )


def test_committed_summary_matches_tree():
    """The committed effects.json must certify the current source (the
    ``--write`` flow keeps it fresh; CI runs the gate)."""
    summary = EffectsSummary.load()
    assert summary is not None, "effects.json missing — run `python -m repro.checks effects --write`"
    assert summary.violations() == []
    assert summary.worker_roots


# ---------------------------------------------------------------------------
# PartitionedEventLoop worker certification
# ---------------------------------------------------------------------------


def _partitioner():
    from repro.sim.partition import NodeGroupPartitioner

    return NodeGroupPartitioner(4, 2, node_of_thread=lambda tid: 0)


def _violating_summary(qualname="tests.fake.Cb.run"):
    return EffectsSummary(
        {
            "version": SCHEMA_VERSION,
            "worker": {"roots": {qualname: {"status": "violation", "line": 1}}},
        }
    )


def test_partition_rejects_violating_summary_at_construction():
    from repro.sim.partition import PartitionedEventLoop, WorkerEffectsError

    with pytest.raises(WorkerEffectsError, match="tests.fake.Cb.run"):
        PartitionedEventLoop(_partitioner(), validate_effects=_violating_summary())


def test_partition_opt_out_skips_validation():
    from repro.sim.partition import PartitionedEventLoop

    loop = PartitionedEventLoop(_partitioner(), validate_effects=False)
    assert loop._effects is None


def test_partition_without_summary_degrades_gracefully(monkeypatch):
    from repro.checks.effects import summary as summary_mod
    from repro.sim.partition import PartitionedEventLoop

    monkeypatch.setattr(summary_mod.EffectsSummary, "load", classmethod(lambda cls, path=None: None))
    loop = PartitionedEventLoop(_partitioner())
    assert loop._effects is None


def test_partition_schedule_refuses_violating_callback():
    from repro.sim.events import EventKind
    from repro.sim.partition import PartitionedEventLoop, WorkerEffectsError

    class Cb:
        def run(self, event):
            pass

    qual = f"{Cb.__module__}.{Cb.run.__qualname__}"
    loop = PartitionedEventLoop(_partitioner(), validate_effects=False)
    loop._effects = _violating_summary(qual)
    with pytest.raises(WorkerEffectsError):
        loop.schedule(EventKind.MESSAGE_DELIVER, 10, 0, callback=Cb().run)
    # unknown callables stay allowed
    loop.schedule(EventKind.MESSAGE_DELIVER, 20, 0, callback=lambda e: None)


def test_partition_runs_clean_against_committed_summary():
    """The real kernel constructs with the committed effects.json and
    dispatches the repo's own callbacks without tripping the check."""
    from repro.runtime.djvm import DJVM
    from repro.workloads.sor import SORWorkload

    vm = DJVM(4, kernel="partitioned", partitions=2)
    assert vm.validate_effects is True
    workload = SORWorkload(n=32, rounds=1, n_threads=4, seed=3)
    workload.build(vm)
    vm.run(workload.programs())
