"""Tests for the happens-before race detector
(:mod:`repro.checks.racedetect`)."""

from __future__ import annotations

import pytest

from repro.checks.racedetect import DataRaceError, replay_trace
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import RacyCounterWorkload

from tests.conftest import simple_class, wrap_main


def run_counter(*, locked: bool, racecheck="collect", n_threads=2):
    wl = RacyCounterWorkload(n_threads=n_threads, locked=locked, seed=7)
    djvm = DJVM(n_nodes=2, racecheck=racecheck)
    wl.build(djvm)
    result = djvm.run(wl.programs())
    return wl, djvm, result


def two_thread_djvm(racecheck="collect"):
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test(), racecheck=racecheck)
    cls = simple_class(djvm, "Obj", 64)
    obj = djvm.allocate(cls, home_node=0)
    djvm.spawn_thread(0)
    djvm.spawn_thread(1)
    return djvm, obj


class TestSeededRace:
    def test_racy_counter_detected(self):
        wl, djvm, _ = run_counter(locked=False)
        reports = djvm.racedetector.reports
        assert reports, "seeded race must be detected"
        counter = [r for r in reports if r.obj_id == wl.counter_id]
        assert counter, "race must be on the shared counter object"
        # Write-write and write-read orderings both exist in round one.
        kinds = {r.kind for r in counter}
        assert "write-write" in kinds

    def test_report_carries_both_sites_and_evidence(self):
        wl, djvm, _ = run_counter(locked=False)
        report = djvm.racedetector.reports[0]
        text = report.render()
        assert "first: " in text and "second:" in text
        assert f"thread {report.first.thread_id}" in text
        assert f"thread {report.second.thread_id}" in text
        assert report.first.thread_id != report.second.thread_id
        assert "vector clock" in text  # the unordering evidence
        assert report.class_name == "Counter"

    def test_private_and_read_only_objects_never_reported(self):
        wl, djvm, _ = run_counter(locked=False)
        flagged = {r.obj_id for r in djvm.racedetector.reports}
        assert wl.config_id not in flagged  # read-shared only
        assert not flagged.intersection(wl.scratch_ids)  # thread-private

    def test_raise_mode(self):
        with pytest.raises(DataRaceError) as exc:
            run_counter(locked=False, racecheck=True)
        assert exc.value.report.kind in ("write-write", "write-read", "read-write")


class TestLockOrdering:
    def test_locked_counter_is_silent(self):
        _, djvm, _ = run_counter(locked=True)
        assert djvm.racedetector.reports == []
        assert djvm.racedetector.accesses_checked > 0

    def test_locked_counter_raise_mode_completes(self):
        _, djvm, result = run_counter(locked=True, racecheck=True)
        assert result.ops_executed > 0


class TestBarrierOrdering:
    """Barrier-separated conflicting accesses are ordered — the
    false-positive regression the tracked workloads rely on."""

    def test_write_then_barrier_then_read(self):
        djvm, obj = two_thread_djvm()
        djvm.run(
            {
                0: wrap_main([P.write(obj.obj_id), P.barrier(0), P.barrier(1)]),
                1: wrap_main([P.barrier(0), P.read(obj.obj_id), P.barrier(1)]),
            }
        )
        assert djvm.racedetector.reports == []

    def test_alternating_phases_stay_ordered(self):
        djvm, obj = two_thread_djvm()
        djvm.run(
            {
                0: wrap_main(
                    [P.write(obj.obj_id), P.barrier(0), P.barrier(1), P.write(obj.obj_id), P.barrier(2)]
                ),
                1: wrap_main(
                    [P.barrier(0), P.read(obj.obj_id), P.barrier(1), P.barrier(2), P.read(obj.obj_id)]
                ),
            }
        )
        assert djvm.racedetector.reports == []

    def test_same_phase_conflict_is_reported(self):
        djvm, obj = two_thread_djvm()
        djvm.run(
            {
                0: wrap_main([P.write(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
            }
        )
        kinds = {r.kind for r in djvm.racedetector.reports}
        assert kinds, "same-phase write/read must race"
        assert kinds <= {"write-read", "read-write"}


class TestOfflineReplay:
    def test_online_and_offline_reports_match(self):
        _, online_djvm, _ = run_counter(locked=False, racecheck="collect")
        _, record_djvm, _ = run_counter(locked=False, racecheck="record")
        assert record_djvm.racedetector.reports == []  # detection was off
        trace = record_djvm.race_trace
        assert trace, "record mode must capture the operation trace"
        replayed = replay_trace(trace)
        online = [r.render() for r in online_djvm.racedetector.reports]
        offline = [r.render() for r in replayed.reports]
        # Offline replay lacks the class-name resolver, so compare the
        # resolver-independent fields.
        assert len(online) == len(offline)
        for a, b in zip(online_djvm.racedetector.reports, replayed.reports):
            assert (a.obj_id, a.kind, a.first, a.second) == (
                b.obj_id,
                b.kind,
                b.first,
                b.second,
            )

    def test_clean_trace_replays_clean(self):
        _, record_djvm, _ = run_counter(locked=True, racecheck="record")
        replayed = replay_trace(record_djvm.race_trace)
        assert replayed.reports == []
        assert replayed.accesses_checked > 0

    def test_aux_trace_rides_event_kernel(self):
        _, record_djvm, _ = run_counter(locked=False, racecheck="record")
        kernel = record_djvm._interpreter.kernel
        assert kernel.aux_trace == record_djvm.race_trace


class TestByteIdentity:
    """The detector is a pure observer: simulated results are identical
    with the detector off, collecting, or recording."""

    @staticmethod
    def fingerprint(result):
        return (
            result.execution_time_ms,
            result.ops_executed,
            dict(result.counters),
            dict(result.thread_finish_ms),
        )

    def test_detector_modes_leave_results_identical(self):
        baseline = self.fingerprint(run_counter(locked=False, racecheck=False)[2])
        for mode in ("collect", "record"):
            assert self.fingerprint(run_counter(locked=False, racecheck=mode)[2]) == baseline

    def test_detector_off_runs_are_reproducible(self):
        a = self.fingerprint(run_counter(locked=False, racecheck=False)[2])
        b = self.fingerprint(run_counter(locked=False, racecheck=False)[2])
        assert a == b

    def test_tracked_workload_identical_with_detector(self):
        from repro.workloads import SORWorkload

        def run(racecheck):
            wl = SORWorkload(n=64, rounds=2, n_threads=2, seed=3)
            djvm = DJVM(n_nodes=2, racecheck=racecheck)
            wl.build(djvm)
            return self.fingerprint(djvm.run(wl.programs()))

        assert run(False) == run("collect")


class TestDetectorState:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DJVM(n_nodes=2, racecheck="bogus")

    def test_reports_deduplicated_per_pair(self):
        """The racy counter races on every round, but each (object,
        thread pair, kind) is reported once."""
        _, djvm, _ = run_counter(locked=False)
        seen = set()
        for r in djvm.racedetector.reports:
            key = (r.obj_id, r.first.thread_id, r.second.thread_id, r.kind)
            assert key not in seen
            seen.add(key)
