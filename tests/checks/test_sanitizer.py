"""Protocol sanitizer tests: every invariant gets a deliberately
corrupted protocol state asserting its violation code fires, plus
clean-run and byte-identity guarantees."""

from __future__ import annotations

import hashlib

import pytest

from repro.checks.sanitizer import INVARIANTS, ProtocolSanitizer, SanitizerViolation
from repro.core.profiler import ProfilerSuite
from repro.dsm.intervals import IntervalRecord
from repro.dsm.states import CopyRecord, RealState
from repro.runtime.djvm import DJVM
from repro.runtime.migration import MigrationResult
from repro.runtime.thread import SimThread
from repro.workloads.sor import SORWorkload


def make_thread(thread_id: int = 0, interval_id: int = 1) -> SimThread:
    thread = SimThread(thread_id=thread_id, node_id=0)
    thread.current_interval = IntervalRecord(thread_id, interval_id)
    return thread


def expect(code: str):
    return pytest.raises(SanitizerViolation, match=code)


# ---------------------------------------------------------------------------
# SAN001: interval discipline
# ---------------------------------------------------------------------------


def test_san001_nested_open_via_engine():
    djvm = DJVM(n_nodes=2, sanitize=True)
    thread = djvm.spawn_thread(0)
    djvm.hlrc.open_interval(thread)
    with expect("SAN001"):
        djvm.hlrc.open_interval(thread)


def test_san001_close_without_open():
    san = ProtocolSanitizer()
    thread = make_thread()
    with expect("SAN001"):
        san.on_interval_close(thread, thread.current_interval)


def test_san001_nonincreasing_interval_id():
    san = ProtocolSanitizer()
    thread = make_thread(interval_id=3)
    san.on_interval_open(thread)
    san.on_interval_close(thread, thread.current_interval)
    thread.current_interval = IntervalRecord(0, 3)  # reused id
    with expect("SAN001"):
        san.on_interval_open(thread)


def test_san001_open_at_run_end():
    san = ProtocolSanitizer()
    thread = make_thread()
    san.on_interval_open(thread)
    with expect("SAN001"):
        san.on_run_end([thread])


# ---------------------------------------------------------------------------
# SAN002: at-most-once OAL logging
# ---------------------------------------------------------------------------


def test_san002_double_oal_log():
    san = ProtocolSanitizer()
    thread = make_thread()
    san.on_interval_open(thread)
    san.on_oal_log(thread, 1, obj_id=7)
    with expect("SAN002"):
        san.on_oal_log(thread, 1, obj_id=7)


def test_san002_log_into_wrong_interval():
    san = ProtocolSanitizer()
    thread = make_thread()
    san.on_interval_open(thread)
    with expect("SAN002"):
        san.on_oal_log(thread, 99, obj_id=7)


# ---------------------------------------------------------------------------
# SAN003: copy-state legality
# ---------------------------------------------------------------------------


def _djvm_with_object():
    djvm = DJVM(n_nodes=2, sanitize=True)
    jclass = djvm.define_class("X", instance_size=64)
    obj = djvm.allocate(jclass, home_node=0)
    return djvm, obj


def test_san003_cache_copy_claiming_home():
    djvm, obj = _djvm_with_object()
    djvm.hlrc.heaps[1].copies[obj.obj_id] = CopyRecord(obj.obj_id, RealState.HOME)
    with expect("SAN003"):
        djvm.sanitizer.sweep_heaps()


def test_san003_home_copy_invalidated():
    djvm, obj = _djvm_with_object()
    djvm.hlrc.heaps[0].copies[obj.obj_id] = CopyRecord(obj.obj_id, RealState.INVALID)
    with expect("SAN003"):
        djvm.sanitizer.sweep_heaps()


def test_san003_spurious_invalidation():
    djvm, obj = _djvm_with_object()
    djvm.hlrc.heaps[1].copies[obj.obj_id] = CopyRecord(
        obj.obj_id, RealState.INVALID, fetched_version=obj.home_version
    )
    with expect("SAN003"):
        djvm.sanitizer.sweep_heaps()


def test_san003_dirty_bytes_exceed_size():
    djvm, obj = _djvm_with_object()
    djvm.hlrc.heaps[1].copies[obj.obj_id] = CopyRecord(
        obj.obj_id, RealState.VALID, dirty_bytes=obj.size_bytes + 1
    )
    with expect("SAN003"):
        djvm.sanitizer.sweep_heaps()


def test_san003_clean_sweep_counts_copies():
    djvm, obj = _djvm_with_object()
    djvm.hlrc.heaps[1].copies[obj.obj_id] = CopyRecord(
        obj.obj_id, RealState.VALID, fetched_version=obj.home_version
    )
    assert djvm.sanitizer.sweep_heaps() >= 1


# ---------------------------------------------------------------------------
# SAN004: barrier accounting
# ---------------------------------------------------------------------------


def test_san004_double_arrival():
    san = ProtocolSanitizer()
    san.on_barrier_arrive(0, thread_id=1, parties=4, now_ns=10)
    with expect("SAN004"):
        san.on_barrier_arrive(0, thread_id=1, parties=4, now_ns=20)


def test_san004_arrivals_exceed_parties():
    san = ProtocolSanitizer()
    san.on_barrier_arrive(0, thread_id=0, parties=1, now_ns=10)
    with expect("SAN004"):
        san.on_barrier_arrive(0, thread_id=1, parties=1, now_ns=20)


def test_san004_over_release():
    san = ProtocolSanitizer()
    san.on_barrier_arrive(0, thread_id=0, parties=2, now_ns=10)
    san.on_barrier_arrive(0, thread_id=1, parties=2, now_ns=20)
    with expect("SAN004"):
        san.on_barrier_release(0, parties=2, waiters=[0, 1, 1], release_ns=30)


def test_san004_released_set_mismatch():
    san = ProtocolSanitizer()
    san.on_barrier_arrive(0, thread_id=0, parties=2, now_ns=10)
    san.on_barrier_arrive(0, thread_id=1, parties=2, now_ns=20)
    with expect("SAN004"):
        san.on_barrier_release(0, parties=2, waiters=[0, 2], release_ns=30)


# ---------------------------------------------------------------------------
# SAN005: time monotonicity
# ---------------------------------------------------------------------------


def test_san005_kernel_clock_rewind():
    san = ProtocolSanitizer()
    san.on_event_pop(100, None)
    with expect("SAN005"):
        san.on_event_pop(50, None)


def test_san005_release_before_last_arrival():
    san = ProtocolSanitizer()
    san.on_barrier_arrive(0, thread_id=0, parties=2, now_ns=10)
    san.on_barrier_arrive(0, thread_id=1, parties=2, now_ns=500)
    with expect("SAN005"):
        san.on_barrier_release(0, parties=2, waiters=[0, 1], release_ns=400)


# ---------------------------------------------------------------------------
# SAN006: sticky-set membership
# ---------------------------------------------------------------------------


class _StubFootprinter:
    def __init__(self, candidates):
        self.interval_tracked = {}
        self._candidates = candidates

    def live_sticky_candidates(self, thread):
        return list(self._candidates)


def test_san006_stray_sticky_candidate():
    san = ProtocolSanitizer()
    san.attach_footprinter(_StubFootprinter([42]))
    thread = make_thread()
    result = MigrationResult(
        thread_id=0, from_node=0, to_node=1, stack_slots=0, direct_cost_ns=0
    )
    with expect("SAN006"):
        san.on_migration(thread, result)


def test_san006_prefetched_copy_not_valid_at_target():
    djvm, obj = _djvm_with_object()
    thread = djvm.spawn_thread(0)
    result = MigrationResult(
        thread_id=0,
        from_node=0,
        to_node=1,
        stack_slots=0,
        direct_cost_ns=0,
        prefetched_ids=[obj.obj_id],  # nothing was installed at node 1
    )
    with expect("SAN006"):
        djvm.sanitizer.on_migration(thread, result)


# ---------------------------------------------------------------------------
# SAN007: write-notice discipline
# ---------------------------------------------------------------------------


def test_san007_notice_version_not_increasing():
    san = ProtocolSanitizer()
    san.on_notice(5, version=3)
    with expect("SAN007"):
        san.on_notice(5, version=3)


def test_san007_written_object_missing_from_access_log():
    san = ProtocolSanitizer()
    thread = make_thread()
    san.on_interval_open(thread)
    thread.current_interval.written.add(9)  # never touched via access()
    with expect("SAN007"):
        san.on_interval_close(thread, thread.current_interval)


# ---------------------------------------------------------------------------
# violation structure
# ---------------------------------------------------------------------------


def test_violation_carries_code_and_trace():
    san = ProtocolSanitizer()
    san.on_event_pop(100, None)
    san.on_barrier_arrive(3, thread_id=2, parties=4, now_ns=100)
    try:
        san.on_barrier_arrive(3, thread_id=2, parties=4, now_ns=110)
    except SanitizerViolation as violation:
        assert violation.code == "SAN004"
        assert violation.trace  # ring buffer attached
        assert "barrier_arrive b3 t2" in str(violation)
        assert san.violations == 1
    else:  # pragma: no cover
        pytest.fail("expected SanitizerViolation")


def test_invariant_catalog_complete():
    assert set(INVARIANTS) == {f"SAN00{i}" for i in range(1, 8)}


# ---------------------------------------------------------------------------
# clean runs + byte-identity
# ---------------------------------------------------------------------------


def _profiled_run(*, sanitize: bool):
    workload = SORWorkload(n=128, rounds=2, n_threads=4, seed=7)
    djvm = DJVM(n_nodes=4, sanitize=sanitize)
    workload.build(djvm, placement="round_robin")
    suite = ProfilerSuite(djvm, correlation=True, footprint=True, stack=True)
    suite.set_rate_all(4)
    result = djvm.run(workload.programs())
    return djvm, result, suite


def _fingerprint(djvm, result, suite) -> tuple:
    return (
        hashlib.sha256(suite.tcm().tobytes()).hexdigest(),
        result.execution_time_ms,
        tuple(sorted(result.thread_finish_ms.items())),
        tuple(sorted(djvm.hlrc.counters.items())),
    )


def test_sanitized_workload_run_is_clean():
    djvm, _, _ = _profiled_run(sanitize=True)
    assert djvm.sanitizer.violations == 0
    assert djvm.sanitizer.checks_run > 1000  # really hooked in, not idle


def test_sanitizer_does_not_perturb_results():
    """TCM checksum, thread clocks and protocol counters must be
    byte-identical with the sanitizer on and off."""
    on = _fingerprint(*_profiled_run(sanitize=True))
    off = _fingerprint(*_profiled_run(sanitize=False))
    assert on == off


def test_run_twice_byte_identity():
    """Two identical runs produce bit-identical results — the contract
    the simlint hazard fixes (sorted set iteration) protect."""
    first = _fingerprint(*_profiled_run(sanitize=False))
    second = _fingerprint(*_profiled_run(sanitize=False))
    assert first == second


def test_sanitized_migration_run_is_clean():
    """The check-gate runner's migration path (SAN006 on real traffic)."""
    from repro.checks.sanitize_run import run_workload

    workload = SORWorkload(n=128, rounds=2, n_threads=4, seed=11)
    _, sanitizer = run_workload(workload, migrate=True)
    assert sanitizer.violations == 0
    assert sanitizer.checks_run > 0
