"""simlint rule fixtures: one positive (finding fires), one negative
(clean code), and one disabled-by-comment case per rule."""

from __future__ import annotations

import pytest

from repro.checks.simlint import RULES, check_paths, check_source

#: a path inside the deterministic core (SIM001/2/3/4/8 scope).
CORE = "src/repro/dsm/somefile.py"
#: a path outside the deterministic core.
OUTSIDE = "src/repro/analysis/somefile.py"
#: a hot module (SIM005 scope).
HOT = "src/repro/dsm/states.py"
#: a test file (only SIM006 applies).
TESTISH = "tests/core/test_somefile.py"


def codes(source: str, path: str) -> list[str]:
    return [f.code for f in check_source(source, path)]


# ---------------------------------------------------------------------------
# SIM001: wall-clock reads
# ---------------------------------------------------------------------------


def test_sim001_positive_module_attr():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert codes(src, CORE) == ["SIM001"]


def test_sim001_positive_from_import():
    src = "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
    assert "SIM001" in codes(src, CORE)


def test_sim001_negative_outside_core():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert codes(src, OUTSIDE) == []


def test_sim001_negative_sim_clock():
    src = "def f(clock):\n    return clock.now_ns\n"
    assert codes(src, CORE) == []


def test_sim001_disabled():
    src = "import time\n\ndef f():\n    return time.time()  # simlint: disable=SIM001\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM002: global/unseeded RNG
# ---------------------------------------------------------------------------


def test_sim002_positive_module_random():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert codes(src, CORE) == ["SIM002"]


def test_sim002_positive_from_random_import():
    src = "from random import shuffle\n"
    assert codes(src, CORE) == ["SIM002"]


def test_sim002_positive_numpy_global():
    src = "import numpy as np\n\ndef f():\n    np.random.seed(1)\n"
    assert codes(src, CORE) == ["SIM002"]


def test_sim002_positive_unseeded_default_rng():
    src = "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
    assert codes(src, CORE) == ["SIM002"]


def test_sim002_negative_seeded():
    src = (
        "import random\nimport numpy as np\n\n"
        "def f(seed):\n"
        "    return random.Random(seed), np.random.default_rng(seed)\n"
    )
    assert codes(src, CORE) == []


def test_sim002_disabled():
    src = "import random\n\ndef f():\n    return random.random()  # simlint: disable=SIM002\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM003: unordered iteration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "loop",
    [
        "for x in {1, 2, 3}:\n    pass\n",
        "for x in set(items):\n    pass\n",
        "for k in d.keys():\n    pass\n",
        "for v in d.values():\n    pass\n",
        "for k, v in d.items():\n    pass\n",
        "out = [v for v in d.values()]\n",
        "out = {k: v for k, v in d.items()}\n",
        "for o in interval.written:\n    pass\n",
        "for o in a.union(b):\n    pass\n",
        "out = [x for x in frozenset(items)]\n",
    ],
)
def test_sim003_positive(loop):
    src = "def f(items, d, interval, a, b):\n" + "".join(
        "    " + line + "\n" for line in loop.splitlines()
    )
    assert "SIM003" in codes(src, CORE)


def test_sim003_positive_set_algebra_known_name():
    src = "def f(written, other):\n    for o in written | other:\n        pass\n"
    assert codes(src, CORE) == ["SIM003"]


@pytest.mark.parametrize(
    "loop",
    [
        "for x in sorted({1, 2, 3}):\n    pass\n",
        "for x in sorted(interval.written):\n    pass\n",
        "for i, x in enumerate(sorted(written)):\n    pass\n",
        "for x in items:\n    pass\n",
        "for k in d:\n    pass\n",  # dicts preserve insertion order
        "for k, v in sorted(d.items()):\n    pass\n",
        "for v in list(sorted(d.values())):\n    pass\n",
    ],
)
def test_sim003_negative(loop):
    src = "def f(items, d, interval, written):\n" + "".join(
        "    " + line + "\n" for line in loop.splitlines()
    )
    assert codes(src, CORE) == []


def test_sim003_negative_outside_core():
    src = "def f(written):\n    for o in written:\n        pass\n"
    assert codes(src, OUTSIDE) == []


def test_sim003_disabled():
    src = (
        "def f(written):\n"
        "    for o in written:  # simlint: disable=SIM003\n"
        "        pass\n"
    )
    assert codes(src, CORE) == []


def test_sim003_dict_view_disabled_with_justification():
    src = (
        "def f(d):\n"
        "    for k, v in d.items():  # simlint: disable=SIM003 (integer sum; order cannot leak)\n"
        "        pass\n"
    )
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM004: id()-based ordering
# ---------------------------------------------------------------------------


def test_sim004_positive():
    src = "def f(objs):\n    return sorted(objs, key=lambda o: id(o))\n"
    assert codes(src, CORE) == ["SIM004"]


def test_sim004_negative_stable_field():
    src = "def f(objs):\n    return sorted(objs, key=lambda o: o.obj_id)\n"
    assert codes(src, CORE) == []


def test_sim004_negative_outside_core():
    src = "def f(o):\n    return id(o)\n"
    assert codes(src, OUTSIDE) == []


def test_sim004_disabled():
    src = "def f(o):\n    return id(o)  # simlint: disable=SIM004\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM005: hot-path classes without __slots__
# ---------------------------------------------------------------------------


def test_sim005_positive():
    src = "class Record:\n    def __init__(self):\n        self.x = 1\n"
    assert codes(src, HOT) == ["SIM005"]


def test_sim005_negative_slots():
    src = "class Record:\n    __slots__ = ('x',)\n"
    assert codes(src, HOT) == []


def test_sim005_negative_dataclass_slots():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass(slots=True)\nclass Record:\n    x: int = 0\n"
    )
    assert codes(src, HOT) == []


def test_sim005_negative_exception_exempt():
    src = "class ProtocolError(RuntimeError):\n    pass\n"
    assert codes(src, HOT) == []


def test_sim005_negative_cold_module():
    src = "class Record:\n    def __init__(self):\n        self.x = 1\n"
    assert codes(src, OUTSIDE) == []


def test_sim005_disabled():
    src = "class Record:  # simlint: disable=SIM005\n    def __init__(self):\n        self.x = 1\n"
    assert codes(src, HOT) == []


# ---------------------------------------------------------------------------
# SIM006: mutable default arguments (applies everywhere, tests included)
# ---------------------------------------------------------------------------


def test_sim006_positive_list_literal():
    src = "def f(x=[]):\n    return x\n"
    assert codes(src, TESTISH) == ["SIM006"]


def test_sim006_positive_kwonly_dict_call():
    src = "def f(*, cache=dict()):\n    return cache\n"
    assert codes(src, CORE) == ["SIM006"]


def test_sim006_negative_none_default():
    src = "def f(x=None, y=(), z=0):\n    return x, y, z\n"
    assert codes(src, CORE) == []


def test_sim006_disabled():
    src = "def f(x=[]):  # simlint: disable=SIM006\n    return x\n"
    assert codes(src, TESTISH) == []


# ---------------------------------------------------------------------------
# SIM007: heapq outside the event kernel
# ---------------------------------------------------------------------------


def test_sim007_positive_import():
    src = "import heapq\n"
    assert codes(src, CORE) == ["SIM007"]


def test_sim007_positive_from_import():
    src = "from heapq import heappush\n"
    assert codes(src, OUTSIDE) == ["SIM007"]


def test_sim007_negative_event_kernel():
    src = "import heapq\n"
    assert codes(src, "src/repro/sim/events.py") == []


def test_sim007_negative_tests():
    src = "import heapq\n"
    assert codes(src, TESTISH) == []


def test_sim007_disabled():
    src = "import heapq  # simlint: disable=SIM007\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM008: environment reads in the deterministic core
# ---------------------------------------------------------------------------


def test_sim008_positive_environ():
    src = "import os\n\ndef f():\n    return os.environ['SCALE']\n"
    assert codes(src, CORE) == ["SIM008"]


def test_sim008_positive_getenv():
    src = "import os\n\ndef f():\n    return os.getenv('SCALE')\n"
    assert "SIM008" in codes(src, CORE)


def test_sim008_negative_outside_core():
    src = "import os\n\ndef f():\n    return os.environ['SCALE']\n"
    assert codes(src, OUTSIDE) == []


def test_sim008_disabled():
    src = "import os\n\ndef f():\n    return os.environ['SCALE']  # simlint: disable=SIM008\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM009: direct counters[...] mutation outside the metrics registry
# ---------------------------------------------------------------------------


def test_sim009_positive_augassign():
    src = "class C:\n    def f(self):\n        self.counters['faults'] += 1\n"
    assert codes(src, CORE) == ["SIM009"]


def test_sim009_positive_assign():
    src = "def f(hlrc):\n    hlrc.counters['diffs'] = 0\n"
    assert codes(src, CORE) == ["SIM009"]


def test_sim009_negative_read_only():
    src = "def f(hlrc):\n    return hlrc.counters['faults']\n"
    assert codes(src, CORE) == []


def test_sim009_negative_testish():
    src = "def f(hlrc):\n    hlrc.counters['faults'] += 1\n"
    assert codes(src, TESTISH) == []


def test_sim009_negative_metrics_home():
    src = "def f(self):\n    self.counters['faults'] += 1\n"
    assert codes(src, "src/repro/obs/metrics.py") == []


def test_sim009_disabled():
    src = "def f(hlrc):\n    hlrc.counters['x'] += 1  # simlint: disable=SIM009\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM010: process machinery in partition-worker modules
# ---------------------------------------------------------------------------

#: a partition-worker module (SIM010 scope).
WORKERISH = "src/repro/sim/partition.py"
#: the sanctioned worker harness (SIM010's single exemption).
HARNESS = "src/repro/sim/workerpool.py"


def test_sim010_positive_import_multiprocessing():
    src = "import multiprocessing\n"
    assert "SIM010" in codes(src, WORKERISH)


def test_sim010_positive_from_import():
    src = "from concurrent.futures import ProcessPoolExecutor\n"
    assert "SIM010" in codes(src, WORKERISH)


def test_sim010_positive_os_fork():
    src = "import os\n\ndef f():\n    return os.fork()\n"
    assert "SIM010" in codes(src, WORKERISH)


def test_sim010_positive_time_sleep():
    src = "import time\n\ndef f():\n    time.sleep(0.1)\n"
    assert "SIM010" in codes(src, WORKERISH)


def test_sim010_negative_harness_exempt():
    src = "import multiprocessing\n"
    assert "SIM010" not in codes(src, HARNESS)


def test_sim010_negative_outside_worker_scope():
    src = "import multiprocessing\n"
    assert "SIM010" not in codes(src, OUTSIDE)


def test_sim010_negative_testish():
    src = "import multiprocessing\n"
    assert "SIM010" not in codes(src, "tests/sim/test_partition.py")


def test_sim010_negative_clean_worker():
    src = "def f(kernel):\n    return kernel.drain()\n"
    assert codes(src, WORKERISH) == []


def test_sim010_disabled():
    src = "import multiprocessing  # simlint: disable=SIM010\n"
    assert codes(src, WORKERISH) == []


# ---------------------------------------------------------------------------
# SIM011: sampling-state mutation outside repro/core/sampling.py
# ---------------------------------------------------------------------------

#: the one module allowed to mutate sampling state (SIM011's exemption).
SAMPLING = "src/repro/core/sampling.py"


def test_sim011_positive_gap_table_assign():
    src = "def f(policy, cid):\n    policy.gap_table[cid] = 7\n"
    assert codes(src, CORE) == ["SIM011"]


def test_sim011_positive_counter_augassign():
    src = "def f(backend, cid):\n    backend.sample_counts[cid] += 1\n"
    assert codes(src, CORE) == ["SIM011"]


def test_sim011_positive_state_attr_assign():
    src = "def f(st):\n    st.real_gap = 127\n"
    assert codes(src, CORE) == ["SIM011"]


def test_sim011_positive_memo_clear_call():
    src = "def f(st):\n    st.decisions.clear()\n"
    assert codes(src, CORE) == ["SIM011"]


def test_sim011_positive_outside_core_too():
    # Unlike SIM003, scope is the whole tree, not just the deterministic
    # core — analysis code bypassing set_rate is just as damaging.
    src = "def f(policy, cid):\n    policy.gap_table[cid] = 7\n"
    assert codes(src, OUTSIDE) == ["SIM011"]


def test_sim011_negative_read_only():
    src = "def f(policy, cid):\n    return policy.gap_table[cid]\n"
    assert codes(src, CORE) == []


def test_sim011_negative_sampling_home():
    src = "def f(policy, cid):\n    policy.gap_table[cid] = 7\n"
    assert codes(src, SAMPLING) == []


def test_sim011_negative_testish():
    src = "def f(policy, cid):\n    policy.gap_table[cid] = 7\n"
    assert codes(src, TESTISH) == []


def test_sim011_disabled():
    src = "def f(st):\n    st.real_gap = 127  # simlint: disable=SIM011\n"
    assert codes(src, CORE) == []


# ---------------------------------------------------------------------------
# SIM012: shared-annotated objects mutate under a lock
# ---------------------------------------------------------------------------

#: a workload module (SIM012's natural habitat; the rule applies to any
#: non-test module with a # shared annotation).
WORKLOAD = "src/repro/workloads/somefile.py"

SHARED_PREAMBLE = """\
class W:
    def build(self, djvm):
        self.counter_id = djvm.allocate(cls, 0).obj_id  # shared
        self.scratch_ids = [djvm.allocate(cls, 0).obj_id for _ in range(4)]

"""


def test_sim012_positive_bare_write():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.write(self.counter_id)\n"
    )
    assert codes(src, WORKLOAD) == ["SIM012"]


def test_sim012_positive_conditional_lock_does_not_cover():
    """An acquire inside an `if` arm must not suppress the finding —
    depth is tracked per block."""
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        if self.locked:\n"
        "            yield P.acquire(0)\n"
        "        yield P.write(self.counter_id)\n"
        "        if self.locked:\n"
        "            yield P.release(0)\n"
    )
    assert codes(src, WORKLOAD) == ["SIM012"]


def test_sim012_negative_locked_write():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.acquire(0)\n"
        "        yield P.write(self.counter_id)\n"
        "        yield P.release(0)\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_negative_thread_partitioned_write():
    src = SHARED_PREAMBLE + (
        "    def gen(self, thread_id):\n"
        "        yield P.write(self.scratch_ids[thread_id])\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_negative_unannotated_name():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.write(self.scratch_ids[0])\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_negative_read_is_fine():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.read(self.counter_id)\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_negative_no_annotation_no_rule():
    src = (
        "class W:\n"
        "    def build(self, djvm):\n"
        "        self.counter_id = djvm.allocate(cls, 0).obj_id\n"
        "    def gen(self):\n"
        "        yield P.write(self.counter_id)\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_negative_testish():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.write(self.counter_id)\n"
    )
    assert codes(src, TESTISH) == []


def test_sim012_disabled():
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.write(self.counter_id)  # simlint: disable=SIM012\n"
    )
    assert codes(src, WORKLOAD) == []


def test_sim012_lock_scope_is_per_block():
    """A write *after* the locked block's release is flagged."""
    src = SHARED_PREAMBLE + (
        "    def gen(self):\n"
        "        yield P.acquire(0)\n"
        "        yield P.write(self.counter_id)\n"
        "        yield P.release(0)\n"
        "        yield P.write(self.counter_id)\n"
    )
    assert codes(src, WORKLOAD) == ["SIM012"]


# ---------------------------------------------------------------------------
# SIM013: silent exception swallows in the engine
# ---------------------------------------------------------------------------

#: a path inside the SIM013 engine scope.
ENGINE = "src/repro/runtime/somefile.py"
HEAP = "src/repro/heap/somefile.py"


def test_sim013_positive_except_exception_pass():
    src = "def f():\n    try:\n        g()\n    except Exception:\n        pass\n"
    assert codes(src, ENGINE) == ["SIM013"]
    assert codes(src, HEAP) == ["SIM013"]


def test_sim013_positive_bare_except():
    src = "def f():\n    try:\n        g()\n    except:\n        pass\n"
    assert codes(src, ENGINE) == ["SIM013"]


def test_sim013_positive_ellipsis_body():
    src = "def f():\n    try:\n        g()\n    except BaseException:\n        ...\n"
    assert codes(src, ENGINE) == ["SIM013"]


def test_sim013_negative_narrow_type():
    src = "def f():\n    try:\n        g()\n    except KeyError:\n        pass\n"
    assert codes(src, ENGINE) == []


def test_sim013_negative_handled():
    src = (
        "def f(log):\n    try:\n        g()\n"
        "    except Exception as exc:\n        log.append(exc)\n"
    )
    assert codes(src, ENGINE) == []


def test_sim013_negative_outside_engine_scope():
    src = "def f():\n    try:\n        g()\n    except Exception:\n        pass\n"
    assert codes(src, OUTSIDE) == []
    assert codes(src, TESTISH) == []


def test_sim013_disabled():
    src = (
        "def f():\n    try:\n        g()\n"
        "    except Exception:  # simlint: disable=SIM013\n        pass\n"
    )
    assert codes(src, ENGINE) == []


# ---------------------------------------------------------------------------
# semantic SIM009/SIM010 feeds from effects.json
# ---------------------------------------------------------------------------


def _summary(doc):
    from repro.checks.effects.summary import EffectsSummary

    return EffectsSummary(doc)


def test_semantic_sim009_feed(tmp_path):
    from repro.checks.simlint import semantic_findings

    target = tmp_path / "engine.py"
    target.write_text("def f(obj):\n    helper(obj)\n")
    summary = _summary(
        {"version": 1, "counter_writes": {"engine.py": [[2, "mod.helper"]]}}
    )
    findings = semantic_findings(summary, [target])
    assert [f.code for f in findings] == ["SIM009"]
    assert findings[0].line == 2 and "mod.helper" in findings[0].message


def test_semantic_sim010_feed(tmp_path):
    from repro.checks.simlint import semantic_findings

    target = tmp_path / "engine.py"
    target.write_text("def f():\n    pass\n")
    summary = _summary(
        {"version": 1, "host_in_worker": {"engine.py": [[1, "mod.f", "wallclock"]]}}
    )
    findings = semantic_findings(summary, [target])
    assert [f.code for f in findings] == ["SIM010"]
    assert "wallclock" in findings[0].message


def test_semantic_feed_honors_disable_comment(tmp_path):
    from repro.checks.simlint import semantic_findings

    target = tmp_path / "engine.py"
    target.write_text("def f(obj):\n    helper(obj)  # simlint: disable=SIM009\n")
    summary = _summary(
        {"version": 1, "counter_writes": {"engine.py": [[2, "mod.helper"]]}}
    )
    assert semantic_findings(summary, [target]) == []


def test_semantic_feed_dedupes_against_syntactic(tmp_path):
    """A line the syntactic pass already flags is not double-reported."""
    from repro.checks.simlint import check_paths as cp

    sub = tmp_path / "src" / "repro" / "dsm"
    sub.mkdir(parents=True)
    target = sub / "engine.py"
    target.write_text("def f(obj):\n    obj.counters[0] += 1\n")
    summary = _summary(
        {"version": 1, "counter_writes": {"repro/dsm/engine.py": [[2, "mod.f"]]}}
    )
    findings = cp([target], effects_summary=summary)
    assert [f.code for f in findings] == ["SIM009"]


# ---------------------------------------------------------------------------
# engine behaviour
# ---------------------------------------------------------------------------


def test_disable_all():
    src = "import heapq  # simlint: disable=all\n"
    assert codes(src, CORE) == []


def test_disable_several_codes():
    src = "import time, heapq  # simlint: disable=SIM007, SIM001\n"
    assert codes(src, CORE) == []


def test_render_format():
    findings = check_source("import heapq\n", CORE)
    assert len(findings) == 1
    rendered = findings[0].render()
    assert rendered.startswith(f"{CORE}:1:0: SIM007 ")


def test_syntax_error_reported_not_raised():
    findings = check_source("def f(:\n", CORE)
    assert [f.code for f in findings] == ["SIM000"]


def test_every_rule_has_catalog_entry():
    assert set(RULES) == {f"SIM00{i}" for i in range(1, 10)} | {
        "SIM010",
        "SIM011",
        "SIM012",
        "SIM013",
    }


def test_repo_tree_is_clean():
    """The whole tree must lint clean — the make check gate relies on it."""
    assert check_paths(["src", "tests", "benchmarks"]) == []
