"""The whole-program static analysis: verifier, CFG, sharing lattice,
may-race soundness, pre-seeds and placement candidates."""

from __future__ import annotations

import pytest

from repro.checks.staticflow import (
    IRVerificationError,
    analyze,
    analyze_ir,
    build_cfg,
    fixed_point,
    gate_program,
    may_races,
    uncovered_dynamic,
    verify_ops,
    verify_structure,
    verify_workload,
)
from repro.checks.staticflow.verifier import _structure_python
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.ir import ObjectInfo, WorkloadIR
from repro.runtime.program import compile_program
from repro.workloads.synthetic import GroupSharingWorkload, RacyCounterWorkload

N_NODES = 4


def _ir(programs: dict[int, list], *, n_nodes: int = 2, objects=(), nodes=None):
    """Hand-build a WorkloadIR for verifier/CFG unit tests."""
    compiled = {tid: compile_program(ops) for tid, ops in programs.items()}
    objs = {
        obj_id: ObjectInfo(
            obj_id=obj_id,
            class_id=0,
            class_name="Obj",
            home_node=0,
            size_bytes=64,
            is_array=False,
            length=0,
            site="test.site",
        )
        for obj_id in objects
    }
    node_of = nodes or {tid: tid % n_nodes for tid in programs}
    return WorkloadIR(
        n_nodes=n_nodes, programs=compiled, node_of_thread=node_of, objects=objs
    )


# ---------------------------------------------------------------------------
# verifier: structural tier
# ---------------------------------------------------------------------------


class TestVerifyStructure:
    def test_clean_program(self):
        prog = compile_program([P.call("m", 2), P.read(0), P.ret()])
        assert verify_structure(prog) == []

    def test_ret_with_empty_stack(self):
        prog = compile_program([P.ret()])
        assert [p.code for p in verify_structure(prog)] == ["IR003"]

    def test_unpopped_frames(self):
        prog = compile_program([P.call("m", 2), P.read(0)])
        probs = verify_structure(prog)
        assert [p.code for p in probs] == ["IR003"]
        assert "unpopped" in probs[0].message

    def test_setslot_outside_frame(self):
        prog = compile_program([P.setslot(0, 1)])
        assert [p.code for p in verify_structure(prog)] == ["IR004"]

    def test_setslot_inside_frame_ok(self):
        prog = compile_program([P.call("m", 2), P.setslot(0, 1), P.ret()])
        assert verify_structure(prog) == []

    def test_double_acquire(self):
        prog = compile_program(
            [P.acquire(1), P.acquire(1), P.release(1), P.release(1)]
        )
        probs = verify_structure(prog)
        assert any(p.code == "IR005" and "already held" in p.message for p in probs)

    def test_release_unheld(self):
        prog = compile_program([P.release(9)])
        assert any(p.code == "IR005" for p in verify_structure(prog))

    def test_ends_holding_lock(self):
        prog = compile_program([P.acquire(2)])
        probs = verify_structure(prog)
        assert any(p.code == "IR005" and "holding" in p.message for p in probs)

    def test_empty_program(self):
        assert verify_structure(compile_program([])) == []

    def test_python_fallback_matches_numpy(self):
        """The numpy-less scan must report the same codes and pcs."""
        cases = [
            [P.call("m", 2), P.read(0), P.ret()],
            [P.ret()],
            [P.call("m", 2)],
            [P.setslot(0, 1)],
            [P.acquire(1), P.acquire(1), P.release(1), P.release(1)],
            [P.acquire(2)],
            [P.release(3)],
        ]
        for ops in cases:
            prog = compile_program(ops)
            np_probs = [(p.code, p.pc) for p in verify_structure(prog, 0)]
            py_probs = [(p.code, p.pc) for p in _structure_python(prog, 0)]
            assert np_probs == py_probs, ops


class TestGateProgram:
    def test_gate_caches_clean_result(self):
        prog = compile_program([P.call("m", 2), P.ret()])
        assert not prog._verified
        gate_program(prog)
        assert prog._verified
        gate_program(prog)  # second call is a no-op

    def test_gate_raises_with_problems_attached(self):
        prog = compile_program([P.call("m", 2)])
        with pytest.raises(IRVerificationError) as exc:
            gate_program(prog)
        assert [p.code for p in exc.value.problems] == ["IR003"]
        assert not prog._verified

    def test_vector_run_gates_malformed_program(self):
        """The interpreter's vector path must refuse a CALL-without-RET
        program instead of replaying it."""
        djvm = DJVM(2, replay="vector")
        cls = djvm.define_class("Obj", 64)
        oid = djvm.allocate(cls, 0).obj_id
        djvm.spawn_thread(0)
        bad = [P.call("m", 2)] + [P.read(oid) for _ in range(16)]
        with pytest.raises(IRVerificationError):
            djvm.run({0: bad})

    def test_scalar_run_is_not_gated(self):
        """The scalar oracle keeps accepting what it always accepted."""
        djvm = DJVM(2, replay="scalar")
        cls = djvm.define_class("Obj", 64)
        oid = djvm.allocate(cls, 0).obj_id
        djvm.spawn_thread(0)
        ok = [P.call("m", 2)] + [P.read(oid) for _ in range(16)] + [P.ret()]
        djvm.run({0: ok})

    def test_vector_run_accepts_clean_program(self):
        djvm = DJVM(2, replay="vector")
        cls = djvm.define_class("Obj", 64)
        oid = djvm.allocate(cls, 0).obj_id
        djvm.spawn_thread(0)
        ok = [P.call("m", 2)] + [P.read(oid) for _ in range(16)] + [P.ret()]
        djvm.run({0: ok})


# ---------------------------------------------------------------------------
# verifier: full tier
# ---------------------------------------------------------------------------


class TestVerifyOps:
    def test_unknown_opcode(self):
        assert [p.code for p in verify_ops([(42, 0)])] == ["IR001"]

    def test_wrong_arity(self):
        probs = verify_ops([(P.OP_READ, 1)])
        assert [p.code for p in probs] == ["IR002"]

    def test_bad_field_domain(self):
        probs = verify_ops([(P.OP_READ, -1, 1, 1, 0)])
        assert any(p.code == "IR002" for p in probs)

    def test_non_tuple_op(self):
        assert [p.code for p in verify_ops(["nope"])] == ["IR002"]

    def test_barrier_while_holding_lock(self):
        ops = [P.acquire(0), P.barrier(0), P.release(0)]
        probs = verify_ops(ops)
        assert any(p.code == "IR006" for p in probs)

    def test_ir006_not_in_gate_tier(self):
        """Lock-across-barrier is full-tier only — legal for the
        engines, merely suspicious."""
        prog = compile_program([P.acquire(0), P.barrier(0), P.release(0)])
        assert verify_structure(prog) == []


class TestVerifyWorkload:
    def test_clean_two_thread_workload(self):
        ops = [P.call("m", 2), P.read(0), P.barrier(0), P.ret()]
        ir = _ir({0: list(ops), 1: list(ops)}, objects=[0])
        assert verify_workload(ir) == []

    def test_unallocated_object(self):
        ir = _ir({0: [P.read(7)]}, objects=[])
        probs = verify_workload(ir)
        assert [p.code for p in probs] == ["IR007"]

    def test_unallocated_call_ref(self):
        ir = _ir({0: [P.call("m", 2, refs=[(0, 9)]), P.ret()]}, objects=[])
        assert any(p.code == "IR007" for p in verify_workload(ir))

    def test_barrier_sequence_divergence(self):
        ir = _ir(
            {0: [P.barrier(0), P.barrier(1)], 1: [P.barrier(0), P.barrier(2)]},
            objects=[],
        )
        probs = verify_workload(ir)
        assert any(p.code == "IR008" and p.thread_id == 1 for p in probs)

    def test_barrier_count_divergence(self):
        ir = _ir({0: [P.barrier(0)], 1: []}, objects=[])
        assert any(p.code == "IR008" for p in verify_workload(ir))

    def test_thread_off_cluster(self):
        ir = _ir({0: [P.read(0)]}, objects=[0], nodes={0: 5})
        assert any(p.code == "IR009" for p in verify_workload(ir))

    def test_built_workloads_verify_clean(self):
        wl = RacyCounterWorkload(n_threads=4, locked=True, seed=11)
        djvm = DJVM(n_nodes=N_NODES)
        wl.build(djvm, placement="round_robin")
        ir = djvm.export_ir(wl.programs())
        assert verify_workload(ir) == []


# ---------------------------------------------------------------------------
# CFG + dataflow
# ---------------------------------------------------------------------------


class TestCFG:
    def test_segmentation_and_phases(self):
        ops = [
            P.call("m", 2),
            P.read(0),
            P.barrier(0),
            P.acquire(0),
            P.write(0),
            P.release(0),
            P.barrier(1),
            P.ret(),
        ]
        ir = _ir({0: ops}, objects=[0])
        cfg = build_cfg(ir)
        segs = ir and cfg.threads[0].segments
        assert [s.phase for s in segs] == [0, 1, 1, 1, 2]
        assert cfg.n_phases == 3
        assert cfg.threads[0].barrier_ids == (0, 1)

    def test_locksets(self):
        ops = [
            P.read(0),
            P.acquire(7),
            P.write(0),
            P.release(7),
            P.read(0),
        ]
        ir = _ir({0: ops}, objects=[0])
        cfg = build_cfg(ir)
        segs = cfg.threads[0].segments
        # Three segments: before ACQUIRE, the locked body, after RELEASE.
        assert [set(s.locks) for s in segs] == [set(), {7}, set()]

    def test_access_summaries_weight_repeats(self):
        ops = [P.read(0, repeat=3), P.write(0, repeat=2), P.read(1)]
        ir = _ir({0: ops}, objects=[0, 1])
        cfg = build_cfg(ir)
        seg = cfg.threads[0].segments[0]
        assert seg.reads == {0: 3, 1: 1}
        assert seg.writes == {0: 2}

    def test_back_to_back_barriers_make_empty_segments(self):
        ir = _ir({0: [P.barrier(0), P.barrier(1)]}, objects=[])
        cfg = build_cfg(ir)
        segs = cfg.threads[0].segments
        assert [s.n_ops for s in segs] == [0, 0, 0]
        assert [s.phase for s in segs] == [0, 1, 2]

    def test_empty_program_single_segment(self):
        ir = _ir({0: []}, objects=[])
        cfg = build_cfg(ir)
        assert len(cfg.threads[0].segments) == 1
        assert cfg.n_phases == 1

    def test_fixed_point_generic_chain(self):
        """The solver on a 3-node chain with meet=min."""
        nodes = [0, 1, 2]
        edges = [(0, 1), (1, 2)]
        facts = fixed_point(
            nodes,
            edges,
            init=lambda n: 10 if n == 0 else None,
            transfer=lambda n, f: f - 1,
            meet=min,
        )
        assert facts == {0: 10, 1: 9, 2: 8}


# ---------------------------------------------------------------------------
# sharing lattice
# ---------------------------------------------------------------------------


class TestSharing:
    def _report(self, workload, placement="round_robin"):
        return analyze(workload, n_nodes=N_NODES, placement=placement)

    def test_racy_counter_classifications(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = self._report(wl)
        assert report.verified
        sharing = report.sharing
        assert sharing.objects[wl.counter_id].classification == "ping-pong"
        assert sharing.objects[wl.config_id].classification == "read-mostly-shared"
        # Scratch objects are written only by their own thread, homed
        # with it under round_robin: node-private.
        for t, oid in enumerate(wl.scratch_ids):
            assert sharing.objects[oid].classification == "node-private", t

    def test_site_summaries_take_worst(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = self._report(wl)
        assert report.sharing.sites["racy.counter"].classification == "ping-pong"
        assert report.sharing.sites["racy.scratch"].classification == "node-private"

    def test_predicted_tcm_matches_ground_truth_structure(self):
        """GroupSharing knows its exact TCM; the static prediction must
        have the same nonzero support (scale differs by design)."""
        import numpy as np

        wl = GroupSharingWorkload(
            n_threads=8, group_size=2, objects_per_group=8, private_per_thread=4
        )
        report = self._report(wl, placement="round_robin")
        predicted = report.sharing.predicted_tcm()
        truth = wl.true_tcm()
        assert predicted.shape == truth.shape
        assert np.array_equal(predicted > 0, truth > 0)

    def test_preseed_rates_reflect_worst_class(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = self._report(wl)
        # Counter/config/scratch share one JClass; the counter's
        # ping-pong dominates.
        assert report.preseeds == {"Counter": 8}

    def test_single_writer_rows(self):
        from repro.workloads.sor import SORWorkload

        report = self._report(SORWorkload(n=64, rounds=2, n_threads=4, seed=11))
        counts = report.sharing.sites["sor.rows"].counts
        assert counts.get("single-writer", 0) > 0
        assert "ping-pong" not in counts


# ---------------------------------------------------------------------------
# may-race soundness (the issue's acceptance oracle)
# ---------------------------------------------------------------------------


class TestMayRaceSoundness:
    def test_racy_counter_races_found(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = analyze(wl, n_nodes=N_NODES, placement="round_robin")
        kinds = {r.kind for r in report.races}
        assert kinds == {"write-write", "read-write"}
        assert all(r.obj_id == wl.counter_id for r in report.races)

    def test_locked_counter_is_silent(self):
        wl = RacyCounterWorkload(n_threads=4, locked=True, seed=11)
        report = analyze(wl, n_nodes=N_NODES, placement="round_robin")
        assert report.races == []

    def test_cross_phase_accesses_do_not_race(self):
        """Writes separated by a barrier are excluded (barrier HB)."""
        ops_a = [P.write(0), P.barrier(0)]
        ops_b = [P.barrier(0), P.write(0)]
        ir = _ir({0: ops_a, 1: ops_b}, objects=[0])
        assert may_races(ir, build_cfg(ir)) == []

    def test_common_lock_excludes_pair(self):
        locked = [P.acquire(0), P.write(5), P.release(0)]
        ir = _ir({0: list(locked), 1: list(locked)}, objects=[5])
        assert may_races(ir, build_cfg(ir)) == []

    def test_disjoint_locks_still_race(self):
        a = [P.acquire(0), P.write(5), P.release(0)]
        b = [P.acquire(1), P.write(5), P.release(1)]
        ir = _ir({0: a, 1: b}, objects=[5])
        races = may_races(ir, build_cfg(ir))
        assert [r.kind for r in races] == ["write-write"]

    def test_static_superset_of_dynamic_on_all_bundled_workloads(self):
        """The soundness cross-check: every FastTrack report on the
        race-gate matrix is in the static may-race set."""
        from repro.checks.runner import race_workloads, run_race_all

        static = {
            name: analyze(wl, n_nodes=N_NODES, placement="round_robin", name=name)
            for name, wl, _expected in race_workloads()
        }
        for name, report in static.items():
            assert report.verified, name
        dynamic = run_race_all(verbose=False)
        any_dynamic = False
        for name, _accesses, reports, expected in dynamic:
            missing = uncovered_dynamic(static[name].races, reports)
            assert missing == [], f"{name}: static set misses dynamic races"
            any_dynamic = any_dynamic or bool(reports)
        assert any_dynamic, "oracle vacuous: no dynamic race reported at all"


# ---------------------------------------------------------------------------
# report plumbing
# ---------------------------------------------------------------------------


class TestReport:
    def test_render_and_json(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = analyze(wl, n_nodes=N_NODES, name="racy")
        text = report.render()
        assert "racy.counter" in text and "may-race set" in text
        doc = report.to_json()
        assert doc["name"] == "racy"
        assert doc["sharing"]["sites"]["racy.counter"]["classification"] == "ping-pong"
        assert doc["may_races"]

    def test_failed_verification_short_circuits(self):
        ir = _ir({0: [P.read(7)]}, objects=[])
        report = analyze_ir(ir)
        assert not report.verified
        assert report.cfg is None and report.sharing is None
        assert "VERIFIER" in report.render()
        assert "sharing" not in report.to_json()


# ---------------------------------------------------------------------------
# consumers: sampling pre-seed + placement candidates
# ---------------------------------------------------------------------------


class TestPreseed:
    def test_preseed_applies_rates_by_class_name(self):
        from repro.core.sampling import SamplingPolicy

        djvm = DJVM(2)
        counter = djvm.define_class("Counter", 64)
        other = djvm.define_class("Other", 64)
        policy = SamplingPolicy()
        assert not policy.preseeded
        default_gap = policy.gap(other)
        changed = policy.preseed({"Counter": 8}, djvm.registry)
        assert policy.preseeded
        assert [c.name for c in changed] == ["Counter"]
        # The rate routes through the same realization as set_rate.
        reference = SamplingPolicy()
        reference.set_rate(counter, 8)
        assert policy.gap(counter) == reference.gap(counter)
        assert policy.gap(other) == default_gap

    def test_preseed_off_means_untouched_policy(self):
        """Nothing in the runtime calls preseed: a fresh policy's state
        is byte-identical whether or not the method exists."""
        from repro.core.sampling import SamplingPolicy

        policy = SamplingPolicy()
        assert policy.rate_changes == 0
        assert not policy.preseeded


class TestPlacementCandidates:
    def test_mishomed_single_writer_yields_home_migration(self):
        from repro.placement import candidates_from_static

        # Thread 1 (node 1 under round_robin) writes an object homed on
        # node 0: a home-migration candidate.
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = analyze(wl, n_nodes=N_NODES, placement="round_robin")
        # RacyCounter's counter is ping-pong -> colocate candidate.
        cands = candidates_from_static(report)
        kinds = {c.kind for c in cands}
        assert "colocate-threads" in kinds
        colo = next(c for c in cands if c.kind == "colocate-threads")
        assert colo.site == "racy.counter"
        assert colo.threads == (0, 1, 2, 3)
        assert colo.target_node is None

    def test_home_migration_from_hand_built_ir(self):
        from repro.placement import candidates_from_static

        # Thread 1 on node 1 is the only writer of object 0 homed on 0.
        ops_w = [P.write(0), P.barrier(0)]
        ops_r = [P.read(0), P.barrier(0)]
        ir = _ir({0: ops_r, 1: ops_w}, n_nodes=2, objects=[0])
        report = analyze_ir(ir)
        cands = candidates_from_static(report)
        assert [c.kind for c in cands] == ["home-migration"]
        assert cands[0].target_node == 1
        assert cands[0].obj_ids == (0,)

    def test_candidates_sorted_by_weight(self):
        from repro.placement.candidates import PlacementCandidate, candidates_from_static

        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        report = analyze(wl, n_nodes=N_NODES, placement="round_robin")
        cands = candidates_from_static(report)
        weights = [c.weight for c in cands]
        assert weights == sorted(weights, reverse=True)
        assert all(isinstance(c, PlacementCandidate) for c in cands)


# ---------------------------------------------------------------------------
# IR export
# ---------------------------------------------------------------------------


class TestExportIR:
    def test_export_snapshots_objects_and_placement(self):
        wl = RacyCounterWorkload(n_threads=4, locked=False, seed=11)
        djvm = DJVM(n_nodes=N_NODES)
        wl.build(djvm, placement="round_robin")
        ir = djvm.export_ir(wl.programs())
        assert ir.n_nodes == N_NODES
        assert ir.thread_ids() == [0, 1, 2, 3]
        assert ir.node_of_thread == {0: 0, 1: 1, 2: 2, 3: 3}
        assert ir.objects[wl.counter_id].site == "racy.counter"
        assert ir.class_names() == ["Counter"]

    def test_unlabeled_allocation_falls_back_to_class_name(self):
        djvm = DJVM(2)
        cls = djvm.define_class("Plain", 32)
        obj = djvm.allocate(cls, 0)
        ir = djvm.export_ir({})
        assert ir.objects[obj.obj_id].site == "Plain"
