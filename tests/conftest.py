"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel


@pytest.fixture
def djvm2() -> DJVM:
    """A 2-node DJVM with fast-test cost scaling."""
    return DJVM(n_nodes=2, costs=CostModel.fast_test())


@pytest.fixture
def djvm4() -> DJVM:
    """A 4-node DJVM with fast-test cost scaling."""
    return DJVM(n_nodes=4, costs=CostModel.fast_test())


def simple_class(djvm: DJVM, name: str = "Obj", size: int = 64):
    """Define (or fetch) a scalar class."""
    if name in djvm.registry:
        return djvm.registry.get(name)
    return djvm.define_class(name, size)


def array_class(djvm: DJVM, name: str = "Arr", elem: int = 8):
    """Define (or fetch) an array class."""
    if name in djvm.registry:
        return djvm.registry.get(name)
    return djvm.define_class(name, is_array=True, element_size=elem)


def run_program(djvm: DJVM, ops_by_thread: dict[int, list]) -> None:
    """Attach and run raw op lists (threads must already be spawned)."""
    djvm.run({tid: list(ops) for tid, ops in ops_by_thread.items()})


def wrap_main(ops: list, anchor: int | None = None) -> list:
    """Wrap an op list in a main() frame (with an optional anchor ref)."""
    refs = [(0, anchor)] if anchor is not None else []
    return [P.call("main", n_slots=4, refs=refs), *ops, P.ret()]
