"""Tests for fine-grained active correlation tracking (Section II.A)."""

import pytest

from repro.core.access_profiler import AccessProfiler
from repro.core.collector import CorrelationCollector
from repro.core.oal import OALBatch
from repro.core.profiler import ProfilerSuite
from repro.core.sampling import SamplingPolicy
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

from tests.conftest import simple_class, wrap_main


def setup(n_nodes=2, n_threads=2, n_objects=6, **suite_kw):
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 64)
    objs = [djvm.allocate(cls, i % n_nodes) for i in range(n_objects)]
    djvm.spawn_threads(n_threads)
    suite = ProfilerSuite(djvm, correlation=True, **suite_kw)
    return djvm, objs, suite


class TestAtMostOnceLogging:
    def test_object_logged_once_per_interval(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        djvm.run({0: wrap_main([P.read(objs[0].obj_id, repeat=100)] * 5 + [P.barrier(0)])})
        assert suite.access_profiler.total_logged == 1

    def test_relogged_in_next_interval(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main(
                    [P.read(objs[0].obj_id), P.barrier(0), P.read(objs[0].obj_id), P.barrier(1)]
                )
            }
        )
        assert suite.access_profiler.total_logged == 2

    def test_per_thread_logging(self):
        """Both threads log the same object independently (per-thread
        OALs, the fix over per-node passive tracking)."""
        djvm, objs, suite = setup()
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
            }
        )
        assert suite.access_profiler.total_logged == 2


class TestSamplingFilter:
    def test_unsampled_objects_skipped(self):
        djvm, objs, suite = setup(n_threads=1, n_objects=10)
        cls = djvm.registry.get("Obj")
        suite.policy.set_nominal_gap(cls, 5)
        ops = [P.read(o.obj_id) for o in objs]
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        # seqs 0..9, gap 5 -> seqs 0 and 5 sampled.
        assert suite.access_profiler.total_logged == 2

    def test_scaled_bytes_delivered(self):
        djvm, objs, suite = setup(n_threads=1, n_objects=10, send_oals=False)
        cls = djvm.registry.get("Obj")
        suite.policy.set_nominal_gap(cls, 5)
        djvm.run({0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)])})
        tcm = suite.collector.tcm()
        batches = suite.collector.batches_received
        assert batches == 1
        # TCM is off-diagonal only; verify via the collector's raw count.
        assert suite.collector.entries_received == 1


class TestCosts:
    def test_logging_cost_attributed(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        djvm.run({0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)])})
        assert djvm.threads[0].cpu.oal_logging_ns > 0
        assert djvm.threads[0].cpu.oal_packing_ns > 0

    def test_real_fault_pays_no_second_trap(self):
        """A logged access that already took a real fault must only add
        the log cost, not another trap."""
        djvm, objs, suite = setup()
        suite.set_full_sampling()
        costs = djvm.costs
        # Thread 0 on node 0 reads an object homed on node 1 -> real fault.
        remote = next(o for o in objs if o.home_node == 1)
        djvm.run(
            {
                0: wrap_main([P.read(remote.obj_id), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        # One log (no extra trap — the fault path already trapped) plus
        # the false-invalid reset of that object when the post-barrier
        # interval opens.
        assert (
            djvm.threads[0].cpu.oal_logging_ns
            == costs.oal_log_ns + costs.false_invalid_reset_ns
        )

    def test_false_invalid_reset_charged_at_open(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main(
                    [P.read(objs[0].obj_id), P.barrier(0), P.compute(100), P.barrier(1)]
                )
            }
        )
        # The interval opened at barrier 0 resets 1 object.
        cpu = djvm.threads[0].cpu
        assert cpu.oal_logging_ns >= djvm.costs.false_invalid_reset_ns

    def test_disabled_profiler_adds_nothing(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.access_profiler.enabled = False
        djvm.run({0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)])})
        assert djvm.threads[0].cpu.profiling_ns == 0
        assert suite.access_profiler.total_logged == 0


class TestOALShipping:
    def test_oal_message_sent_to_master(self):
        djvm, objs, suite = setup()
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[1].obj_id), P.barrier(0)]),
            }
        )
        # Thread 1 is remote from the master; its OAL crosses the wire.
        assert djvm.cluster.network.stats.oal_bytes > 0

    def test_send_disabled_produces_no_traffic(self):
        djvm, objs, suite = setup(send_oals=False)
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[1].obj_id), P.barrier(0)]),
            }
        )
        assert djvm.cluster.network.stats.oal_bytes == 0
        # But the collector still received the batches (Table II's
        # collect-only methodology).
        assert suite.collector.batches_received >= 1

    def test_piggyback_on_barrier_to_master(self):
        djvm, objs, suite = setup(piggyback=True)
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[1].obj_id), P.barrier(0)]),
            }
        )
        assert djvm.cluster.network.stats.piggybacked_messages >= 1

    def test_empty_oal_not_sent(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        djvm.run({0: wrap_main([P.compute(10), P.barrier(0), P.barrier(1)])})
        assert suite.access_profiler.total_batches == 0


class TestResampling:
    def test_rate_change_charges_resampling(self):
        djvm, objs, suite = setup(n_threads=1)
        suite.set_full_sampling()
        cls = djvm.registry.get("Obj")

        def program():
            yield P.call("main", 2)
            yield P.read(objs[0].obj_id)
            yield P.barrier(0)
            # Mid-run rate change: next interval open pays resampling.
            suite.set_rate_all(1)
            yield P.read(objs[1].obj_id)
            yield P.barrier(1)
            yield P.ret()

        djvm.run({0: program()})
        assert djvm.threads[0].cpu.resampling_ns > 0
        assert suite.access_profiler.resample_passes >= 1
