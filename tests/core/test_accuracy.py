"""Tests for the accuracy metrics (formulae (1) and (2))."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.accuracy import absolute_error, accuracy, euclidean_error

matrices = arrays(
    np.float64,
    (4, 4),
    elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


class TestErrors:
    def test_identity_zero_error(self):
        m = np.arange(9.0).reshape(3, 3)
        assert euclidean_error(m, m) == 0.0
        assert absolute_error(m, m) == 0.0

    def test_known_values(self):
        a = np.array([[0.0, 2.0], [2.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert absolute_error(a, b) == pytest.approx(1.0)
        assert euclidean_error(a, b) == pytest.approx(1.0)

    def test_zero_reference_nonzero_estimate(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        assert math.isinf(absolute_error(a, b))
        assert math.isinf(euclidean_error(a, b))

    def test_zero_reference_zero_estimate(self):
        z = np.zeros((2, 2))
        assert absolute_error(z, z) == 0.0
        assert euclidean_error(z, z) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            absolute_error(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(matrices, matrices)
    def test_nonnegative(self, a, b):
        assert absolute_error(a, b) >= 0
        assert euclidean_error(a, b) >= 0

    @given(matrices, st.floats(min_value=0.1, max_value=10))
    def test_scale_invariance(self, b, k):
        """Scaling both maps by k leaves the normalized errors alone —
        required for cross-rate comparability."""
        a = b * 1.1
        assert absolute_error(a * k, b * k) == pytest.approx(
            absolute_error(a, b), rel=1e-9, abs=1e-12
        )

    @given(matrices)
    def test_abs_bounds_euc_relationship(self, b):
        """For the uniform-perturbation case the two metrics coincide;
        in general both must flag a perturbed matrix as nonzero error."""
        a = b + 1.0
        if b.sum() > 0:
            assert absolute_error(a, b) > 0
            assert euclidean_error(a, b) > 0


class TestAccuracy:
    def test_perfect(self):
        m = np.ones((2, 2))
        assert accuracy(m, m, "abs") == 1.0
        assert accuracy(m, m, "euc") == 1.0

    def test_floor_at_zero(self):
        a = np.full((2, 2), 100.0)
        b = np.ones((2, 2))
        assert accuracy(a, b) == 0.0

    def test_infinite_error_gives_zero(self):
        assert accuracy(np.ones((2, 2)), np.zeros((2, 2))) == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.ones((2, 2)), np.ones((2, 2)), "cosine")

    def test_paper_regime(self):
        """A 5% uniform deviation reads as 95% accuracy."""
        b = np.full((4, 4), 100.0)
        a = b * 1.05
        assert accuracy(a, b, "abs") == pytest.approx(0.95)
