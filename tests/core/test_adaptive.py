"""Tests for the adaptive rate controller (Section II.B.2)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveRateController, OfflineRateSearch, RateDecision


def map_family(noise_by_rate):
    """A synthetic tcm_at: the true map plus rate-dependent noise."""
    base = np.array([[0.0, 100.0, 0.0], [100.0, 0.0, 50.0], [0.0, 50.0, 0.0]])

    def tcm_at(rate):
        scale = noise_by_rate.get(rate, 0.0)
        rng = np.random.default_rng(int(rate))
        noisy = base * (1 + scale * rng.standard_normal(base.shape))
        return np.abs(noisy)

    return tcm_at


class TestOfflineRateSearch:
    def test_stops_at_convergence(self):
        # Rates 1 and 2 disagree wildly; 2 vs 4 agree.
        noise = {1: 0.8, 2: 0.0, 4: 0.0, 8: 0.0}
        search = OfflineRateSearch(threshold=0.05, ladder=(1, 2, 4, 8))
        chosen = search.run(map_family(noise))
        assert chosen == 2
        assert search.history[-1].converged

    def test_falls_back_to_finest(self):
        noise = {1: 0.9, 2: 0.6, 4: 0.3, 8: 0.1}
        search = OfflineRateSearch(threshold=0.001, ladder=(1, 2, 4, 8))
        assert search.run(map_family(noise)) == 8

    def test_history_records_errors(self):
        search = OfflineRateSearch(threshold=0.05, ladder=(1, 2))
        search.run(map_family({1: 0.0, 2: 0.0}))
        assert search.history[0].relative_error is None
        assert search.history[1].relative_error == pytest.approx(0.0, abs=1e-9)


class TestAdaptiveRateController:
    def test_settles_on_agreement(self):
        ctrl = AdaptiveRateController(threshold=0.05, ladder=(1, 2, 4, 8))
        m = np.array([[0.0, 10.0], [10.0, 0.0]])
        assert ctrl.rate == 1
        ctrl.observe(m)             # first window at rate 1 -> move to 2
        assert ctrl.rate == 2
        ctrl.observe(m)             # agrees with previous -> settle back at 1
        assert ctrl.settled
        assert ctrl.rate == 1

    def test_keeps_climbing_while_diverging(self):
        ctrl = AdaptiveRateController(threshold=0.01, ladder=(1, 2, 4))
        ctrl.observe(np.array([[0.0, 10.0], [10.0, 0.0]]))
        ctrl.observe(np.array([[0.0, 20.0], [20.0, 0.0]]))
        assert not ctrl.settled
        assert ctrl.rate == 4

    def test_ladder_exhaustion_settles_at_finest(self):
        ctrl = AdaptiveRateController(threshold=0.0, ladder=(1, 2))
        ctrl.observe(np.array([[0.0, 1.0], [1.0, 0.0]]))
        ctrl.observe(np.array([[0.0, 9.0], [9.0, 0.0]]))
        assert ctrl.settled
        assert ctrl.rate == 2

    def test_drift_reopens_search(self):
        ctrl = AdaptiveRateController(
            threshold=0.05, ladder=(1, 2, 4), drift_threshold=0.5
        )
        m = np.array([[0.0, 10.0], [10.0, 0.0]])
        ctrl.observe(m)
        ctrl.observe(m)
        assert ctrl.settled
        shifted = np.array([[0.0, 100.0], [100.0, 0.0]])
        ctrl.observe(shifted)
        assert not ctrl.settled

    def test_settled_without_drift_detection_is_stable(self):
        ctrl = AdaptiveRateController(threshold=0.05, ladder=(1, 2))
        m = np.eye(2)
        ctrl.observe(m)
        ctrl.observe(m)
        rate = ctrl.rate
        for _ in range(5):
            assert ctrl.observe(np.random.default_rng(0).random((2, 2))) == rate

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveRateController(ladder=())

    def test_decisions_logged(self):
        ctrl = AdaptiveRateController(threshold=0.05, ladder=(1, 2, 4))
        m = np.ones((2, 2))
        ctrl.observe(m)
        ctrl.observe(m)
        assert isinstance(ctrl.decisions[0], RateDecision)
        assert ctrl.decisions[0].relative_error is None
        assert ctrl.decisions[1].converged
