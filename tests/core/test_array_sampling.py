"""Tests for array sampling and amortization (Section II.B.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.array_sampling import (
    amortized_sample_bytes,
    is_array_sampled,
    sampled_element_count,
)
from repro.heap.jclass import JClass
from repro.heap.objects import HeapObject


class TestSampledElementCount:
    def test_full_sampling(self):
        assert sampled_element_count(0, 10, 1) == 10

    def test_exact_counting(self):
        # seqs 0..9 with gap 3: 0, 3, 6, 9 -> 4 sampled.
        assert sampled_element_count(0, 10, 3) == 4
        # seqs 5..9 with gap 3: 6, 9 -> 2 (the paper's Fig. 3b middle case).
        assert sampled_element_count(5, 5, 3) == 2
        # seqs 10..12 with gap 7: none.
        assert sampled_element_count(10, 3, 7) == 0

    def test_zero_length(self):
        assert sampled_element_count(0, 0, 3) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sampled_element_count(0, 5, 0)
        with pytest.raises(ValueError):
            sampled_element_count(0, -1, 3)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=1, max_value=600),
    )
    def test_matches_bruteforce(self, seq, length, gap):
        expected = sum(1 for k in range(seq, seq + length) if k % gap == 0)
        assert sampled_element_count(seq, length, gap) == expected

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=2_000),
        st.integers(min_value=1, max_value=600),
    )
    def test_count_bounds(self, seq, length, gap):
        """The count never deviates from length/gap by more than one —
        the statistical uniformity the scheme is designed for."""
        count = sampled_element_count(seq, length, gap)
        assert abs(count - length / gap) <= 1

    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=1, max_value=1_000),
    )
    def test_arrays_at_least_gap_long_always_sampled(self, seq, gap):
        """A large array can never dodge sampling entirely (the paper's
        motivation for per-element numbering)."""
        assert is_array_sampled(seq, gap, gap)


class TestAmortizedBytes:
    def arr(self, seq=0, length=10, elem=8):
        cls = JClass(0, "double[]", 16, is_array=True, element_size=elem)
        return HeapObject(0, cls, seq=seq, home_node=0, length=length)

    def test_full_sampling_equals_payload(self):
        obj = self.arr(length=10, elem=8)
        assert amortized_sample_bytes(obj, 1) == 80

    def test_amortization_shrinks_with_gap(self):
        obj = self.arr(length=100)
        assert amortized_sample_bytes(obj, 10) < amortized_sample_bytes(obj, 2)

    def test_scalar_rejected(self):
        cls = JClass(0, "Obj", 64)
        obj = HeapObject(0, cls, seq=0, home_node=0)
        with pytest.raises(TypeError):
            amortized_sample_bytes(obj, 2)

    def test_unbiasedness_via_scaling(self):
        """Summed over consecutively numbered arrays, amortized bytes
        times the gap estimates the true payload within one element per
        array — the anti-skew property of Section II.B.3."""
        gap = 7
        total_true = 0
        total_est = 0
        seq = 0
        for length in (3, 10, 64, 200, 1):
            obj = self.arr(seq=seq, length=length)
            seq += length
            total_true += length * 8
            total_est += amortized_sample_bytes(obj, gap) * gap
        assert abs(total_est - total_true) <= gap * 8 * 5
