"""Tests for the master-side correlation collector."""

import pytest

from repro.core.collector import CorrelationCollector
from repro.core.oal import OALBatch
from repro.sim.cluster import Cluster


def batch(tid, entries, interval=1):
    b = OALBatch(thread_id=tid, interval_id=interval)
    for oid, size in entries:
        b.add(oid, size, class_id=0)
    return b


def make_collector(n_threads=2, window=None):
    cluster = Cluster(2)
    return CorrelationCollector(n_threads, cluster, window_batches=window), cluster


class TestDelivery:
    def test_counts(self):
        col, _ = make_collector()
        col.deliver(batch(0, [(1, 10), (2, 20)]))
        col.deliver(batch(1, [(1, 10)]))
        assert col.batches_received == 2
        assert col.entries_received == 3

    def test_tcm_on_demand(self):
        col, _ = make_collector()
        col.deliver(batch(0, [(1, 10)]))
        col.deliver(batch(1, [(1, 10)]))
        tcm = col.tcm()
        assert tcm[0, 1] == 10

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            CorrelationCollector(0, Cluster(1))


class TestWindows:
    def test_auto_window_processing(self):
        col, _ = make_collector(window=2)
        col.deliver(batch(0, [(1, 10)]))
        assert len(col.window_tcms) == 0
        col.deliver(batch(1, [(1, 10)]))
        assert len(col.window_tcms) == 1

    def test_windows_accrue(self):
        col, _ = make_collector(window=2)
        for _ in range(2):
            col.deliver(batch(0, [(1, 10)]))
            col.deliver(batch(1, [(1, 10)]))
        tcm = col.tcm()
        assert tcm[0, 1] == 20  # one contribution per window

    def test_same_window_dedup(self):
        """Within one window, repeated logs of an object by a thread
        count once."""
        col, _ = make_collector()
        col.deliver(batch(0, [(1, 10)], interval=1))
        col.deliver(batch(0, [(1, 10)], interval=2))
        col.deliver(batch(1, [(1, 10)], interval=1))
        assert col.tcm()[0, 1] == 10


class TestCostModelling:
    def test_compute_cost_charged_to_master(self):
        col, cluster = make_collector()
        col.deliver(batch(0, [(1, 10), (2, 10)]))
        col.deliver(batch(1, [(1, 10)]))
        col.process_window()
        assert col.tcm_compute_ns > 0
        assert cluster.master.cpu.extra["tcm_compute_ns"] == col.tcm_compute_ns
        assert col.tcm_compute_ms == col.tcm_compute_ns / 1e6

    def test_cost_grows_with_sharers(self):
        """O(M N^2): an object shared by all threads costs more to accrue
        than the same entries spread over private objects."""
        shared, _ = make_collector(n_threads=8)
        private, _ = make_collector(n_threads=8)
        for t in range(8):
            shared.deliver(batch(t, [(1, 10)]))
            private.deliver(batch(t, [(100 + t, 10)]))
        shared.process_window()
        private.process_window()
        assert shared.tcm_compute_ns > private.tcm_compute_ns

    def test_reset(self):
        col, _ = make_collector()
        col.deliver(batch(0, [(1, 10)]))
        col.process_window()
        col.reset()
        assert col.batches_received == 0
        assert col.tcm().sum() == 0
        assert col.tcm_compute_ns == 0
