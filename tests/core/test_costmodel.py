"""Tests for the migration cost model."""

import numpy as np
import pytest

from repro.core.costmodel import MigrationCostModel
from repro.sim.costs import CostModel
from repro.sim.network import Network


def model():
    return MigrationCostModel(Network(), CostModel.gideon300())


class TestEstimate:
    def test_direct_cost_grows_with_stack(self):
        m = model()
        small = m.estimate(stack_slots=4, sticky_footprint={})
        big = m.estimate(stack_slots=400, sticky_footprint={})
        assert big.direct_ns > small.direct_ns

    def test_empty_footprint_free_indirect(self):
        est = model().estimate(stack_slots=4, sticky_footprint={})
        assert est.indirect_fault_ns == 0
        assert est.prefetch_ns == 0
        assert est.sticky_objects == 0

    def test_fault_cost_uses_object_sizes(self):
        m = model()
        fp = {"Body": 9600.0}
        many_small = m.estimate(
            stack_slots=4, sticky_footprint=fp, object_sizes={"Body": 96}
        )
        few_large = m.estimate(
            stack_slots=4, sticky_footprint=fp, object_sizes={"Body": 4800}
        )
        # 100 faults vs 2 faults over the same bytes.
        assert many_small.sticky_objects == 100
        assert few_large.sticky_objects == 2
        assert many_small.indirect_fault_ns > few_large.indirect_fault_ns

    def test_prefetch_beats_faults_for_many_objects(self):
        """The paper's point: one bulk transfer amortizes the per-fault
        round trips."""
        est = model().estimate(
            stack_slots=16,
            sticky_footprint={"Body": 50_000.0},
            object_sizes={"Body": 100},
        )
        assert est.prefetch_ns < est.indirect_fault_ns
        assert est.prefetch_saving_ns > 0
        assert est.total_with_prefetch_ns < est.total_without_prefetch_ns

    def test_negative_stack_rejected(self):
        with pytest.raises(ValueError):
            model().estimate(stack_slots=-1, sticky_footprint={})

    def test_negative_footprint_entries_ignored(self):
        est = model().estimate(stack_slots=4, sticky_footprint={"X": -10.0})
        assert est.sticky_bytes == 0


class TestMigrationGain:
    def tcm(self):
        # Threads 0 and 1 share heavily; 2 is a loner.
        return np.array(
            [
                [0.0, 1e6, 0.0],
                [1e6, 0.0, 1e3],
                [0.0, 1e3, 0.0],
            ]
        )

    def test_colocating_partners_gains(self):
        m = model()
        placement = {0: 0, 1: 1, 2: 1}
        gain = m.migration_gain_ns(self.tcm(), 0, 0, 1, placement)
        assert gain > 0

    def test_separating_partners_loses(self):
        m = model()
        placement = {0: 0, 1: 0, 2: 1}
        gain = m.migration_gain_ns(self.tcm(), 0, 0, 1, placement)
        assert gain < 0

    def test_horizon_scales_gain(self):
        m = model()
        placement = {0: 0, 1: 1, 2: 1}
        g1 = m.migration_gain_ns(self.tcm(), 0, 0, 1, placement, horizon_intervals=1)
        g10 = m.migration_gain_ns(self.tcm(), 0, 0, 1, placement, horizon_intervals=10)
        assert g10 == pytest.approx(10 * g1)

    def test_wrong_placement_rejected(self):
        with pytest.raises(ValueError):
            model().migration_gain_ns(self.tcm(), 0, 1, 2, {0: 0, 1: 1, 2: 2})
