"""Tests for the distributed TCM computation extension."""

import numpy as np
import pytest

from repro.core.collector import CorrelationCollector
from repro.core.distributed import DistributedCorrelationCollector
from repro.core.oal import OALBatch
from repro.sim.cluster import Cluster


def batch(tid, entries, interval=1):
    b = OALBatch(thread_id=tid, interval_id=interval)
    for oid, size in entries:
        b.add(oid, size, class_id=0)
    return b


def feed(collector, n_threads=8, n_objects=64):
    rng = np.random.default_rng(1)
    for t in range(n_threads):
        objs = rng.choice(n_objects, size=20, replace=False)
        collector.deliver(batch(t, [(int(o), 64) for o in objs]))


class TestEquivalence:
    def test_identical_tcm_to_centralized(self):
        """Object partitioning is exact: the distributed map equals the
        centralized one."""
        central = CorrelationCollector(8, Cluster(4))
        distributed = DistributedCorrelationCollector(8, Cluster(4))
        feed(central)
        feed(distributed)
        assert np.allclose(central.tcm(), distributed.tcm())

    def test_windowed_equivalence(self):
        central = CorrelationCollector(4, Cluster(4), window_batches=2)
        distributed = DistributedCorrelationCollector(4, Cluster(4), window_batches=2)
        for col in (central, distributed):
            col.deliver(batch(0, [(1, 10), (2, 10)]))
            col.deliver(batch(1, [(1, 10)]))
            col.deliver(batch(2, [(2, 10)]))
            col.deliver(batch(3, [(9, 10)]))
        assert np.allclose(central.tcm(), distributed.tcm())


class TestCostModel:
    def test_wall_time_below_aggregate(self):
        distributed = DistributedCorrelationCollector(8, Cluster(8))
        feed(distributed, n_objects=512)
        distributed.tcm()
        assert 0 < distributed.tcm_compute_wall_ns < distributed.tcm_compute_ns
        assert distributed.speedup_vs_centralized() > 1.5

    def test_speedup_grows_with_nodes(self):
        def wall(n_nodes):
            col = DistributedCorrelationCollector(8, Cluster(n_nodes))
            feed(col, n_objects=512)
            col.tcm()
            return col.tcm_compute_wall_ns

        assert wall(8) < wall(2)

    def test_every_owner_charged(self):
        cluster = Cluster(4)
        col = DistributedCorrelationCollector(8, cluster)
        feed(col, n_objects=64)
        col.tcm()
        charged = [
            n.node_id
            for n in cluster.nodes
            if n.cpu.extra.get("tcm_compute_ns", 0) > 0
        ]
        assert len(charged) == 4

    def test_scatter_and_reduce_traffic_accounted(self):
        cluster = Cluster(4)
        col = DistributedCorrelationCollector(8, cluster)
        feed(col)
        col.tcm()
        # OAL-kind traffic flows master->owners and owners->master.
        assert cluster.network.stats.oal_bytes > 0

    def test_single_node_degenerates_to_centralized_cost(self):
        """On one node, wall time ~= aggregate (no parallelism, only the
        merge overhead differs)."""
        col = DistributedCorrelationCollector(4, Cluster(1))
        feed(col, n_threads=4)
        col.tcm()
        assert col.speedup_vs_centralized() == pytest.approx(1.0, abs=0.05)

    def test_owner_hash_is_stable(self):
        col = DistributedCorrelationCollector(4, Cluster(4))
        assert col.owner_of(13) == 13 % 4
