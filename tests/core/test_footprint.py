"""Tests for sticky-set footprinting (Section III.A step 1)."""

import pytest

from repro.core.footprint import StickySetFootprinter
from repro.core.profiler import ProfilerSuite
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main

MS = 1_000_000


def setup(n_objects=8, obj_size=128, **suite_kw):
    djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", obj_size)
    objs = [djvm.allocate(cls, 0) for _ in range(n_objects)]
    djvm.spawn_thread(0)
    suite = ProfilerSuite(djvm, correlation=False, footprint=True, **suite_kw)
    suite.set_full_sampling()
    return djvm, objs, suite


def spread_accesses(obj_id, times, spacing_ms=2):
    """Ops accessing an object repeatedly with compute gaps between (so
    accesses land in distinct footprint phases)."""
    ops = []
    for _ in range(times):
        ops.append(P.read(obj_id))
        ops.append(P.compute(spacing_ms * MS * 100))  # fast_test scale 0.01
    return ops


class TestStickyCriterion:
    def test_repeated_object_is_sticky(self):
        djvm, objs, suite = setup()
        djvm.run({0: wrap_main(spread_accesses(objs[0].obj_id, 3) + [P.barrier(0)])})
        # The busy interval's footprint (recent estimator) is the object's
        # size; the lifetime average is diluted by the empty final interval.
        assert suite.footprinter.recent_footprint(0) == {"Obj": 128}
        assert suite.footprinter.average_footprint(0)["Obj"] == pytest.approx(64.0)

    def test_single_access_not_sticky(self):
        djvm, objs, suite = setup()
        djvm.run({0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)])})
        assert suite.footprinter.average_footprint(0) == {}

    def test_burst_in_one_phase_not_sticky(self):
        """Many accesses at the same instant are one phase-touch — the
        frequency signal has phase granularity."""
        djvm, objs, suite = setup()
        djvm.run({0: wrap_main([P.read(objs[0].obj_id, repeat=50), P.barrier(0)])})
        assert suite.footprinter.average_footprint(0) == {}

    def test_per_class_composition(self):
        djvm, objs, suite = setup()
        other_cls = djvm.define_class("Other", 256)
        other = djvm.allocate(other_cls, 0)
        ops = spread_accesses(objs[0].obj_id, 3) + spread_accesses(other.obj_id, 3)
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        assert suite.footprinter.recent_footprint(0) == {"Obj": 128, "Other": 256}

    def test_footprint_resets_per_interval(self):
        djvm, objs, suite = setup()
        ops = (
            spread_accesses(objs[0].obj_id, 3)
            + [P.barrier(0)]
            + [P.read(objs[0].obj_id), P.barrier(1)]
        )
        djvm.run({0: wrap_main(ops)})
        fps = suite.footprinter.interval_footprints[0]
        # Every closed interval is recorded; only the first qualifies the
        # object as sticky (non-empty footprint).
        assert len([fp for fp in fps if fp]) == 1


class TestSampledEstimation:
    def test_gap_scaling_estimates_class_bytes(self):
        djvm, objs, suite = setup(n_objects=30)
        cls = djvm.registry.get("Obj")
        suite.policy.set_nominal_gap(cls, 3)
        ops = []
        for o in objs:
            ops.extend(spread_accesses(o.obj_id, 3, spacing_ms=1))
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        fp = suite.footprinter.recent_footprint(0)
        true_bytes = 30 * 128
        # 10 sampled objects x 128 x gap 3 = true bytes exactly here.
        assert fp["Obj"] == pytest.approx(true_bytes, rel=0.2)

    def test_unsampled_objects_invisible(self):
        djvm, objs, suite = setup()
        cls = djvm.registry.get("Obj")
        suite.policy.set_nominal_gap(cls, 100)  # only seq 0 sampled
        ops = spread_accesses(objs[1].obj_id, 3)
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        assert suite.footprinter.average_footprint(0) == {}


class TestTimerThrottling:
    def test_timer_mode_cheaper_than_nonstop(self):
        def run(timer_ms):
            djvm, objs, suite = setup(footprint_timer_ms=timer_ms)
            ops = []
            for o in objs:
                ops.extend(spread_accesses(o.obj_id, 4, spacing_ms=3))
            djvm.run({0: wrap_main(ops + [P.barrier(0)])})
            return djvm.threads[0].cpu.footprinting_ns

        assert run(timer_ms=10) < run(timer_ms=None)

    def test_off_phase_accesses_unseen(self):
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 128)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        fp = StickySetFootprinter(
            __import__("repro.core.sampling", fromlist=["SamplingPolicy"]).SamplingPolicy(),
            djvm.costs,
            timer_period_ms=10,
            duty=0.5,
        )
        fp.attach_gos(djvm.gos)
        djvm.add_hook(fp)
        # All accesses land at ~7ms into each period (off phase).
        ops = []
        for _ in range(3):
            ops.append(P.compute(7 * MS * 100))
            ops.append(P.read(obj.obj_id))
            ops.append(P.compute(3 * MS * 100))
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        assert fp.tracked_accesses == 0

    def test_invalid_config_rejected(self):
        from repro.core.sampling import SamplingPolicy

        with pytest.raises(ValueError):
            StickySetFootprinter(SamplingPolicy(), CostModel(), timer_period_ms=0)
        with pytest.raises(ValueError):
            StickySetFootprinter(SamplingPolicy(), CostModel(), duty=1.5)
        with pytest.raises(ValueError):
            StickySetFootprinter(SamplingPolicy(), CostModel(), min_accesses=0)


class TestLiveQueries:
    def test_live_footprint_mid_interval(self):
        djvm, objs, suite = setup()
        seen = {}

        class Probe:
            def maybe_fire(self, thread):
                if thread.pc == 8:  # after several spread accesses
                    seen["fp"] = suite.footprinter.live_footprint(thread)
                    seen["cands"] = suite.footprinter.live_sticky_candidates(thread)

        djvm.add_timer(Probe())
        djvm.run({0: wrap_main(spread_accesses(objs[0].obj_id, 4) + [P.barrier(0)])})
        assert seen["fp"].get("Obj", 0) == 128
        assert seen["cands"] == [objs[0].obj_id]

    def test_average_over_intervals(self):
        djvm, objs, suite = setup()
        ops = (
            spread_accesses(objs[0].obj_id, 3)
            + [P.barrier(0)]
            + spread_accesses(objs[0].obj_id, 3)
            + spread_accesses(objs[1].obj_id, 3)
            + [P.barrier(1)]
        )
        djvm.run({0: wrap_main(ops)})
        fp = suite.footprinter.average_footprint(0)
        # Interval 1: 128 bytes; interval 2: 256; final interval empty ->
        # average over all three is 128.
        assert fp["Obj"] == pytest.approx(128.0)
        # The recent estimator takes the element-wise max of busy intervals.
        assert suite.footprinter.recent_footprint(0)["Obj"] == 256
