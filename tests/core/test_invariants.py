"""Tests for the exhaustive invariant miner, including the soundness
property the sampling-based miner must satisfy relative to it."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.invariants import frame_lifetimes, mine_invariants, stable_frames
from repro.core.stack_sampler import StackSampler
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel

import pytest


def snap(*frames):
    """Build one snapshot from (uid, method, slots) triples, bottom-up."""
    return [(uid, m, dict(slots)) for uid, m, slots in frames]


class TestMineInvariants:
    def test_constant_slot_is_invariant(self):
        snaps = [
            snap((1, "run", {0: 42})),
            snap((1, "run", {0: 42})),
        ]
        out = mine_invariants(snaps)
        assert len(out) == 1
        assert (out[0].frame_uid, out[0].slot, out[0].obj_id) == (1, 0, 42)

    def test_changing_slot_excluded(self):
        snaps = [
            snap((1, "run", {0: 42, 1: 5})),
            snap((1, "run", {0: 42, 1: 6})),
        ]
        out = mine_invariants(snaps)
        assert [(i.slot, i.obj_id) for i in out] == [(0, 42)]

    def test_single_occurrence_excluded(self):
        snaps = [
            snap((1, "run", {0: 42})),
            snap((2, "other", {0: 9})),
        ]
        assert mine_invariants(snaps) == []

    def test_none_slot_excluded(self):
        snaps = [snap((1, "run", {0: None}))] * 3
        assert mine_invariants(snaps) == []

    def test_min_occurrences_enforced(self):
        snaps = [snap((1, "run", {0: 42}))] * 2
        assert mine_invariants(snaps, min_occurrences=3) == []
        with pytest.raises(ValueError):
            mine_invariants(snaps, min_occurrences=1)


class TestFrameClassification:
    def test_lifetimes(self):
        snaps = [
            snap((1, "run", {})),
            snap((1, "run", {}), (2, "tmp", {})),
            snap((1, "run", {})),
        ]
        assert frame_lifetimes(snaps) == {1: 3, 2: 1}

    def test_stable_frames(self):
        snaps = [
            snap((1, "run", {})),
            snap((1, "run", {}), (2, "tmp", {})),
        ]
        assert stable_frames(snaps, min_fraction=0.9) == {1}
        assert stable_frames([], min_fraction=0.5) == set()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            stable_frames([snap((1, "m", {}))], min_fraction=0)


class TestSamplerSoundness:
    """The sampling-based miner never invents an invariant the exhaustive
    miner (seeing every snapshot) would reject."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop", "set"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=4,
            max_size=40,
        )
    )
    def test_no_false_invariants(self, script):
        thread = SimThread(0, 0)
        sampler = StackSampler(CostModel.gideon300())
        snapshots = []

        def record():
            sampler.sample_stack(thread)
            snapshots.append(
                [
                    (f.frame_uid, f.method, {i: v for i, v in enumerate(f.slots)})
                    for f in thread.stack
                ]
            )

        thread.stack.push(Frame("root", 4, refs={0: 99}))
        record()
        for action, slot, value in script:
            if action == "push":
                thread.stack.push(Frame("m", 4, refs={slot: value}))
            elif action == "pop" and len(thread.stack) > 1:
                thread.stack.pop()
            elif action == "set":
                thread.stack.top.set_slot(slot, value)
            record()

        exhaustive_ok = {
            (i.frame_uid, i.slot, i.obj_id)
            for i in mine_invariants(snapshots, min_occurrences=2)
        }
        samples = sampler.samples_for(0)
        live = {f.frame_uid: f for f in thread.stack}
        for uid, sample in samples.items():
            if sample.raw or sample.comparisons < 1 or uid not in live:
                continue
            for slot, ref in sample.slots.items():
                if ref is None:
                    continue
                assert (uid, slot, ref) in exhaustive_ok, (
                    f"sampler reported false invariant frame={uid} slot={slot} "
                    f"ref={ref}"
                )
