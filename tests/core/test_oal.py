"""Tests for object access list records."""

from repro.core.oal import BATCH_HEADER_BYTES, ENTRY_WIRE_BYTES, OALBatch


class TestOALBatch:
    def test_add_and_len(self):
        b = OALBatch(thread_id=1, interval_id=3)
        b.add(10, 640, class_id=0)
        b.add(11, 128, class_id=2)
        assert len(b) == 2
        assert b.entries[0].obj_id == 10
        assert b.entries[0].scaled_bytes == 640
        assert b.entries[1].class_id == 2

    def test_wire_bytes(self):
        b = OALBatch(thread_id=0, interval_id=0)
        assert b.wire_bytes == BATCH_HEADER_BYTES
        b.add(1, 1, 0)
        b.add(2, 1, 0)
        assert b.wire_bytes == BATCH_HEADER_BYTES + 2 * ENTRY_WIRE_BYTES

    def test_interval_context_kept(self):
        b = OALBatch(thread_id=4, interval_id=9, start_pc=100, end_pc=250)
        assert (b.start_pc, b.end_pc) == (100, 250)
