"""Tests for per-class adaptive rate control (the paper's granularity)."""

import numpy as np
import pytest

from repro.core.adaptive import PerClassRateController
from repro.core.profiler import ProfilerSuite
from repro.core.tcm import tcm_by_class
from repro.core.oal import OALBatch
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import wrap_main


class TestTcmByClass:
    def batch(self, tid, entries):
        b = OALBatch(thread_id=tid, interval_id=1)
        for oid, size, cid in entries:
            b.add(oid, size, class_id=cid)
        return b

    def test_per_class_split(self):
        batches = [
            self.batch(0, [(1, 10, 0), (2, 20, 1)]),
            self.batch(1, [(1, 10, 0), (2, 20, 1)]),
        ]
        maps = tcm_by_class(batches, 2)
        assert set(maps) == {0, 1}
        assert maps[0][0, 1] == 10
        assert maps[1][0, 1] == 20

    def test_sum_equals_full(self):
        from repro.core.tcm import tcm_from_batches

        batches = [
            self.batch(0, [(1, 10, 0), (2, 20, 1), (3, 5, 0)]),
            self.batch(1, [(1, 10, 0), (3, 5, 0)]),
        ]
        maps = tcm_by_class(batches, 2)
        assert np.allclose(sum(maps.values()), tcm_from_batches(batches, 2))


class TestPerClassRateController:
    def flat(self, v):
        m = np.full((2, 2), float(v))
        np.fill_diagonal(m, 0.0)
        return m

    def test_classes_adapt_independently(self):
        ctrl = PerClassRateController(threshold=0.05, ladder=(1, 2, 4, 8))
        # Class 0 is stable from the start; class 1 keeps changing.
        ctrl.observe({0: self.flat(100), 1: self.flat(100)})
        ctrl.observe({0: self.flat(100), 1: self.flat(200)})
        assert ctrl.controller_for(0).settled
        assert not ctrl.controller_for(1).settled
        assert ctrl.rate_of(0) == 1
        assert ctrl.rate_of(1) > 1

    def test_changes_reported_only_when_rate_moves(self):
        ctrl = PerClassRateController(threshold=0.05, ladder=(1, 2, 4))
        changes1 = ctrl.observe({0: self.flat(100)})
        assert changes1 == {0: 2}
        changes2 = ctrl.observe({0: self.flat(100)})  # converges, settles back
        assert changes2 == {0: 1}
        changes3 = ctrl.observe({0: self.flat(100)})  # settled: no change
        assert changes3 == {}

    def test_unobserved_class_untouched(self):
        ctrl = PerClassRateController(ladder=(1, 2, 4))
        ctrl.observe({0: self.flat(1)})
        assert 1 not in ctrl.rates()

    def test_settled_requires_all(self):
        ctrl = PerClassRateController(threshold=0.05, ladder=(1, 2))
        assert not ctrl.settled  # nothing observed yet
        ctrl.observe({0: self.flat(100)})
        ctrl.observe({0: self.flat(100)})
        assert ctrl.settled


class TestSuiteIntegration:
    def test_per_class_rates_diverge_on_heterogeneous_sharing(self):
        """Two classes: one with stable sharing (few large stable
        objects), one with noisy sharing.  The per-class controller must
        settle the stable class at a coarser rate than the noisy one."""
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        stable_cls = djvm.define_class("Stable", 4096)
        noisy_cls = djvm.define_class("Noisy", 64)
        stable = [djvm.allocate(stable_cls, 0) for _ in range(8)]
        noisy = [djvm.allocate(noisy_cls, 0) for _ in range(256)]
        djvm.spawn_thread(0)
        djvm.spawn_thread(1)
        suite = ProfilerSuite(djvm, correlation=True, send_oals=False, window_batches=2)
        suite.set_rate_all(1)
        ctrl = PerClassRateController(threshold=0.10, ladder=(1, 2, 4, 8, 16))
        suite.attach_per_class_controller(ctrl)

        import numpy as np

        rng = np.random.default_rng(5)
        rounds = 10
        programs = {}
        for tid in range(2):
            ops = []
            for r in range(rounds):
                for o in stable:
                    ops.append(P.read(o.obj_id))
                # Noisy class: a different random subset each round.
                subset = rng.choice(len(noisy), size=64, replace=False)
                for i in subset:
                    ops.append(P.read(noisy[int(i)].obj_id))
                ops.append(P.barrier(r))
            programs[tid] = wrap_main(ops)
        djvm.run(programs)

        rates = ctrl.rates()
        assert rates[stable_cls.class_id] <= rates[noisy_cls.class_id]
        # The stable class settles quickly at the coarse end.
        assert ctrl.controller_for(stable_cls.class_id).settled

    def test_requires_windowed_collector(self):
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        djvm.define_class("X", 64)
        djvm.spawn_thread(0)
        suite = ProfilerSuite(djvm, correlation=True)
        with pytest.raises(ValueError):
            suite.attach_per_class_controller(PerClassRateController())
