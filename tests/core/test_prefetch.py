"""Tests for inter-object affinity prefetching (type-3 affinity)."""

import pytest

from repro.core.prefetch import ConnectivityPrefetcher, PathProfile
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import wrap_main


class TestPathProfile:
    def test_follow_raises_heat(self):
        from repro.heap.heap import GlobalObjectSpace

        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        child = gos.allocate(cls, 0)
        parent = gos.allocate(cls, 0, refs=[child.obj_id])
        profile = PathProfile(window=4)
        profile.observe_fault(0, parent)
        profile.observe_access(0, child.obj_id)
        assert profile.heat(cls.class_id, 0) == 1.0

    def test_unfollowed_field_stays_cold(self):
        from repro.heap.heap import GlobalObjectSpace

        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        child = gos.allocate(cls, 0)
        parent = gos.allocate(cls, 0, refs=[child.obj_id])
        profile = PathProfile(window=2)
        profile.observe_fault(0, parent)
        profile.observe_access(0, 999)  # unrelated accesses age the watch out
        profile.observe_access(0, 998)
        profile.observe_access(0, child.obj_id)  # too late
        assert profile.heat(cls.class_id, 0) == 0.0

    def test_heat_is_a_fraction_over_faults(self):
        from repro.heap.heap import GlobalObjectSpace

        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        child = gos.allocate(cls, 0)
        parents = [gos.allocate(cls, 0, refs=[child.obj_id]) for _ in range(4)]
        profile = PathProfile(window=4)
        for i, parent in enumerate(parents):
            profile.observe_fault(0, parent)
            if i % 2 == 0:
                profile.observe_access(0, child.obj_id)
            else:
                profile.observe_access(0, 999)
                profile.observe_access(0, 998)
                profile.observe_access(0, 997)
                profile.observe_access(0, 996)
        assert profile.heat(cls.class_id, 0) == pytest.approx(0.5)

    def test_per_thread_watches_independent(self):
        from repro.heap.heap import GlobalObjectSpace

        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        child = gos.allocate(cls, 0)
        parent = gos.allocate(cls, 0, refs=[child.obj_id])
        profile = PathProfile()
        profile.observe_fault(0, parent)
        profile.observe_access(1, child.obj_id)  # other thread: no credit
        assert profile.heat(cls.class_id, 0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PathProfile(window=0)


def linked_chain_djvm(n_parents=8, fanout_hot=True):
    """Parents on node 0, each referencing a hot child (+ a cold child);
    the accessing thread lives on node 1."""
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = djvm.define_class("Node", 128)
    parents, hot, cold = [], [], []
    for _ in range(n_parents):
        h = djvm.allocate(cls, 0)
        c = djvm.allocate(cls, 0)
        p = djvm.allocate(cls, 0, refs=[h.obj_id, c.obj_id])
        parents.append(p)
        hot.append(h)
        cold.append(c)
    djvm.spawn_thread(1)
    return djvm, cls, parents, hot, cold


class TestConnectivityPrefetcher:
    def run_chain(self, enable: bool):
        djvm, cls, parents, hot, cold = linked_chain_djvm()
        if enable:
            prefetcher = ConnectivityPrefetcher(
                djvm.gos, threshold=0.5, min_faults=2, max_depth=1
            )
            djvm.hlrc.prefetcher = prefetcher
            djvm.add_hook(prefetcher)
        ops = []
        # Always fault the parent then read its hot child (field 0).
        for p, h in zip(parents, hot):
            ops.append(P.read(p.obj_id))
            ops.append(P.read(h.obj_id))
            ops.append(P.compute(1000))
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        return djvm

    def test_learned_prefetch_cuts_faults(self):
        base = self.run_chain(enable=False).hlrc.counters["faults"]
        with_pf = self.run_chain(enable=True)
        assert with_pf.hlrc.counters["faults"] < base
        assert with_pf.hlrc.prefetcher.bundled_objects > 0

    def test_cold_fields_never_bundled(self):
        djvm = self.run_chain(enable=True)
        # Cold children were never accessed: none may have been installed.
        gos = djvm.gos
        heap = djvm.hlrc.heaps[1]
        cold_installed = 0
        for obj in gos:
            pass  # (cold ids are odd allocations; recompute from refs)
        # Recreate structure knowledge: parents hold [hot, cold] refs.
        for obj in gos:
            if len(obj.refs) == 2:
                cold_id = obj.refs[1]
                if cold_id in heap:
                    cold_installed += 1
        assert cold_installed == 0

    def test_cross_home_successors_not_bundled(self):
        """A hot successor homed elsewhere cannot ride the reply."""
        djvm = DJVM(n_nodes=3, costs=CostModel.fast_test())
        cls = djvm.define_class("Node", 128)
        away = djvm.allocate(cls, 2)  # homed on a third node
        parents = [
            djvm.allocate(cls, 0, refs=[away.obj_id]) for _ in range(6)
        ]
        djvm.spawn_thread(1)
        prefetcher = ConnectivityPrefetcher(djvm.gos, threshold=0.5, min_faults=2)
        djvm.hlrc.prefetcher = prefetcher
        djvm.add_hook(prefetcher)
        ops = []
        for p in parents:
            ops.append(P.read(p.obj_id))
            ops.append(P.read(away.obj_id))
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        # 'away' may be hot, but it is never bundled (different home);
        # it faults exactly once on its own.
        assert prefetcher.bundled_bytes == 0

    def test_transitive_depth(self):
        """max_depth=2 pulls grandchildren along learned hot paths."""
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = djvm.define_class("Node", 128)
        chains = []
        for _ in range(8):
            gc = djvm.allocate(cls, 0)
            ch = djvm.allocate(cls, 0, refs=[gc.obj_id])
            pa = djvm.allocate(cls, 0, refs=[ch.obj_id])
            chains.append((pa, ch, gc))
        djvm.spawn_thread(1)
        prefetcher = ConnectivityPrefetcher(
            djvm.gos, threshold=0.5, min_faults=2, max_depth=2
        )
        djvm.hlrc.prefetcher = prefetcher
        djvm.add_hook(prefetcher)
        ops = []
        for pa, ch, gc in chains:
            ops += [P.read(pa.obj_id), P.read(ch.obj_id), P.read(gc.obj_id)]
        djvm.run({0: wrap_main(ops + [P.barrier(0)])})
        # Late chains ride fully on one fault: 3 objects per 1 fault.
        assert djvm.hlrc.counters["faults"] < 3 * len(chains)

    def test_invalid_config(self):
        from repro.heap.heap import GlobalObjectSpace

        gos = GlobalObjectSpace()
        with pytest.raises(ValueError):
            ConnectivityPrefetcher(gos, threshold=0)
        with pytest.raises(ValueError):
            ConnectivityPrefetcher(gos, max_depth=0)
