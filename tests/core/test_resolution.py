"""Tests for sticky-set resolution (Section III.A step 3)."""

import pytest

from repro.core.resolution import resolve_sticky_set
from repro.core.sampling import SamplingPolicy
from repro.heap.heap import GlobalObjectSpace
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel


def chain_heap(n=20, size=64, branch_at=None):
    """A linked chain of objects head -> o1 -> o2 -> ... with an optional
    side branch of a different class."""
    gos = GlobalObjectSpace()
    cls = gos.registry.define("Node", size)
    objs = [gos.allocate(cls, 0) for _ in range(n)]
    for i in range(n - 1):
        objs[i].add_ref(objs[i + 1].obj_id)
    return gos, objs


class TestBudgets:
    def test_resolves_up_to_footprint(self):
        gos, objs = chain_heap(n=20)
        policy = SamplingPolicy()  # full sampling: every object a landmark
        budget = {"Node": 5 * 64}
        stats = resolve_sticky_set(gos, policy, [objs[0].obj_id], budget)
        assert len(stats.selected) == 5
        assert stats.selected_bytes["Node"] == 5 * 64

    def test_empty_footprint_resolves_nothing(self):
        gos, objs = chain_heap()
        stats = resolve_sticky_set(gos, SamplingPolicy(), [objs[0].obj_id], {})
        assert stats.selected == []
        assert stats.visited == 0

    def test_budget_met_stops_tracing(self):
        gos, objs = chain_heap(n=100)
        stats = resolve_sticky_set(
            gos, SamplingPolicy(), [objs[0].obj_id], {"Node": 3 * 64}
        )
        assert stats.visited < 10

    def test_per_class_budgets_independent(self):
        gos = GlobalObjectSpace()
        a_cls = gos.registry.define("A", 100)
        b_cls = gos.registry.define("B", 50)
        root = gos.allocate(a_cls, 0)
        cursor = root
        for i in range(6):
            nxt = gos.allocate(a_cls if i % 2 else b_cls, 0)
            cursor.add_ref(nxt.obj_id)
            cursor = nxt
        policy = SamplingPolicy()
        stats = resolve_sticky_set(
            gos, policy, [root.obj_id], {"A": 10_000, "B": 50}
        )
        assert stats.selected_bytes["B"] == 50  # budget met, B capped

    def test_multiple_entry_points(self):
        """When one root's subgraph is exhausted, the trace switches to
        the next invariant reference."""
        gos, objs = chain_heap(n=3)
        cls = gos.registry.get("Node")
        island = [gos.allocate(cls, 0) for _ in range(5)]
        for i in range(4):
            island[i].add_ref(island[i + 1].obj_id)
        stats = resolve_sticky_set(
            gos,
            SamplingPolicy(),
            [objs[0].obj_id, island[0].obj_id],
            {"Node": 6 * 64},
        )
        assert len(stats.selected) == 6
        assert set(stats.selected) >= {o.obj_id for o in objs}


class TestLandmarks:
    def test_unsampled_path_abandoned(self):
        """A path with no landmarks for tolerance x gap objects stops —
        the wrong-direction guard."""
        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        objs = [gos.allocate(cls, 0) for _ in range(60)]
        for i in range(59):
            objs[i].add_ref(objs[i + 1].obj_id)
        policy = SamplingPolicy()
        policy.set_nominal_gap(cls, 5)
        # Entry at seq 1: the chain 1..59 contains sampled objects at
        # seqs 5,10,..., so the guard stays quiet.  Build a decoy chain
        # whose members are all unsampled by construction: pad allocation
        # so seqs avoid multiples of 5.
        stats = resolve_sticky_set(
            gos, policy, [objs[0].obj_id], {"Node": 64 * 1000}, tolerance=2
        )
        assert stats.landmark_stops == 0

        # Decoy chain built only from unsampled objects (seq % 5 != 0):
        # with gap 5 and tolerance 2, a landmark-free walk must stop
        # after ~10 objects even though the budget is far from met.
        gos2 = GlobalObjectSpace()
        cls2 = gos2.registry.define("Node", 64)
        pool = [gos2.allocate(cls2, 0) for _ in range(60)]
        decoys = [o for o in pool if o.seq % 5 != 0]
        for a, b in zip(decoys, decoys[1:]):
            a.add_ref(b.obj_id)
        policy2 = SamplingPolicy()
        policy2.set_nominal_gap(cls2, 5)
        assert policy2.gap(cls2) == 5
        stats2 = resolve_sticky_set(
            gos2, policy2, [decoys[0].obj_id], {"Node": 64 * 1000}, tolerance=2
        )
        assert stats2.landmark_stops == 1
        assert stats2.visited <= 2 * 5 + 2

    def test_landmarks_disabled_walks_everything(self):
        gos = GlobalObjectSpace()
        cls = gos.registry.define("Node", 64)
        objs = [gos.allocate(cls, 0) for _ in range(50)]
        for i in range(49):
            objs[i].add_ref(objs[i + 1].obj_id)
        policy = SamplingPolicy()
        policy.set_nominal_gap(cls, 997)
        stats = resolve_sticky_set(
            gos,
            policy,
            [objs[0].obj_id],
            {"Node": 64 * 1000},
            use_landmarks=False,
        )
        assert stats.visited == 50
        assert stats.landmark_stops == 0

    def test_invalid_tolerance_rejected(self):
        gos, objs = chain_heap()
        with pytest.raises(ValueError):
            resolve_sticky_set(gos, SamplingPolicy(), [0], {"Node": 1}, tolerance=1.0)


class TestCostCharging:
    def test_cost_charged_to_thread(self):
        gos, objs = chain_heap(n=10)
        thread = SimThread(0, 0)
        stats = resolve_sticky_set(
            gos,
            SamplingPolicy(),
            [objs[0].obj_id],
            {"Node": 64 * 10},
            thread=thread,
            costs=CostModel.gideon300(),
        )
        assert stats.cost_ns > 0
        assert thread.cpu.resolution_ns == stats.cost_ns
        assert thread.clock.now_ns == stats.cost_ns

    def test_cycles_handled(self):
        gos, objs = chain_heap(n=5)
        objs[-1].add_ref(objs[0].obj_id)  # cycle
        stats = resolve_sticky_set(
            gos, SamplingPolicy(), [objs[0].obj_id], {"Node": 64 * 100}
        )
        assert stats.visited == 5  # terminates despite the cycle
