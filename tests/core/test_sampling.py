"""Tests for the class-level adaptive sampling policy (Section II.B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sampling import SamplingPolicy
from repro.heap.heap import GlobalObjectSpace
from repro.util.primes import is_prime


def gos_with_classes():
    gos = GlobalObjectSpace()
    gos.registry.define("Body", 96)
    gos.registry.define("double[]", is_array=True, element_size=8)
    gos.registry.define("Row", 16384)  # bigger than a page
    return gos


class TestGapConfiguration:
    def test_default_is_full_sampling(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        assert policy.gap(gos.registry.get("Body")) == 1

    def test_rate_formula(self):
        """gap = page_size / (unit_size * rate), then nearest prime."""
        gos = gos_with_classes()
        policy = SamplingPolicy(page_size=4096)
        body = gos.registry.get("Body")
        policy.set_rate(body, 1)  # 4096 / 96 = 42 -> prime 41 or 43
        assert is_prime(policy.gap(body))
        assert abs(policy.gap(body) - 42) <= 2

    def test_array_rate_uses_element_size(self):
        gos = gos_with_classes()
        policy = SamplingPolicy(page_size=4096)
        arr = gos.registry.get("double[]")
        policy.set_rate(arr, 4)  # 4096/(8*4) = 128 -> prime 127
        assert policy.gap(arr) == 127

    def test_page_sized_class_always_full(self):
        """Classes at least a page large sample fully at any rate — the
        paper's SOR observation."""
        gos = gos_with_classes()
        policy = SamplingPolicy(page_size=4096)
        row = gos.registry.get("Row")
        for rate in (1, 4, 16, 512):
            policy.set_rate(row, rate)
            assert policy.gap(row) == 1

    def test_full_sentinel(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        policy.set_rate(body, 16)
        policy.set_rate(body, "full")
        assert policy.gap(body) == 1

    def test_gap_always_prime_or_one(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        for rate in (0.25, 0.5, 1, 2, 4, 8, 64):
            policy.set_rate(body, rate)
            g = policy.gap(body)
            assert g == 1 or is_prime(g)

    def test_ablation_mode_skips_primes(self):
        gos = gos_with_classes()
        policy = SamplingPolicy(use_prime_gaps=False)
        body = gos.registry.get("Body")
        policy.set_nominal_gap(body, 32)
        assert policy.gap(body) == 32

    def test_rate_change_counted_and_epoch_bumped(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        assert policy.set_rate(body, 1)
        st = policy.state(body)
        e0 = st.epoch
        assert not policy.set_rate(body, 1)  # no change
        assert st.epoch == e0
        assert policy.set_rate(body, 2)
        assert st.epoch == e0 + 1
        assert policy.rate_changes == 2

    def test_min_gap_enforced(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        policy.set_min_gap(body, 11)
        policy.set_rate(body, "full")
        assert policy.gap(body) >= 11

    def test_set_rate_all_returns_changed(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        changed = policy.set_rate_all(list(gos.registry), 1)
        # Row stays at gap 1 (full) so only Body and double[] change.
        assert {c.name for c in changed} == {"Body", "double[]"}


class TestSamplingDecisions:
    def test_scalar_divisibility(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body_cls = gos.registry.get("Body")
        objs = [gos.allocate(body_cls, 0) for _ in range(20)]
        policy.set_nominal_gap(body_cls, 5)
        gap = policy.gap(body_cls)  # 5 is prime
        assert gap == 5
        sampled = [o for o in objs if policy.is_sampled(o)]
        assert [o.seq for o in sampled] == [0, 5, 10, 15]

    def test_array_sampled_iff_element_hit(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        arr_cls = gos.registry.get("double[]")
        a = gos.allocate(arr_cls, 0, length=3)   # seqs 0-2
        b = gos.allocate(arr_cls, 0, length=3)   # seqs 3-5
        c = gos.allocate(arr_cls, 0, length=2)   # seqs 6-7
        policy.set_nominal_gap(arr_cls, 7)
        assert policy.is_sampled(a)      # element 0
        assert not policy.is_sampled(b)  # 3,4,5 not divisible by 7
        assert policy.is_sampled(c)      # element 7

    def test_logged_bytes_scalar_is_instance_size(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        obj = gos.allocate("Body", 0)
        assert policy.logged_bytes(obj) == 96

    def test_scaled_bytes_is_horvitz_thompson(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body_cls = gos.registry.get("Body")
        obj = gos.allocate(body_cls, 0)
        policy.set_nominal_gap(body_cls, 13)
        assert policy.scaled_bytes(obj) == 96 * 13

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=200))
    def test_population_estimate_unbiased_within_one_gap(self, nominal, n_objects):
        """Summing scaled bytes over sampled scalars estimates the class's
        total bytes to within one gap's worth of objects."""
        gos = GlobalObjectSpace()
        cls = gos.registry.define("C", 50)
        objs = [gos.allocate(cls, 0) for _ in range(n_objects)]
        policy = SamplingPolicy()
        policy.set_nominal_gap(cls, nominal)
        gap = policy.gap(cls)
        estimate = sum(policy.scaled_bytes(o) for o in objs if policy.is_sampled(o))
        true = n_objects * 50
        assert abs(estimate - true) <= gap * 50

    def test_effective_rate(self):
        gos = gos_with_classes()
        policy = SamplingPolicy(page_size=4096)
        body = gos.registry.get("Body")
        policy.set_rate(body, 4)
        # Should realize roughly 4 samples per page.
        assert policy.effective_rate(body) == pytest.approx(4, rel=0.35)


class TestDecisionCacheStaleness:
    """Gap changes must bump the epoch and invalidate memoized decisions
    (the hot path serves cached tuples only while cache_epoch == epoch)."""

    def test_gap_change_bumps_epoch_and_invalidates_cache(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body_cls = gos.registry.get("Body")
        objs = [gos.allocate(body_cls, 0) for _ in range(20)]
        policy.set_nominal_gap(body_cls, 5)
        before = [policy.decision(o) for o in objs]
        st_ = policy.state(body_cls)
        assert st_.cache_epoch == st_.epoch
        assert len(st_.decisions) == len(objs)

        epoch_before = st_.epoch
        assert policy.set_nominal_gap(body_cls, 13)
        assert st_.epoch == epoch_before + 1
        # The stale cache is dropped on the next lookup, not served.
        after = [policy.decision(o) for o in objs]
        assert st_.cache_epoch == st_.epoch
        assert after != before
        # Recomputed decisions match a cache-free policy at the new gap.
        fresh = SamplingPolicy()
        fresh.set_nominal_gap(body_cls, 13)
        assert after == [fresh.decision(o) for o in objs]

    def test_unchanged_gap_keeps_cache_warm(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body_cls = gos.registry.get("Body")
        obj = gos.allocate(body_cls, 0)
        policy.set_nominal_gap(body_cls, 13)
        policy.decision(obj)
        st_ = policy.state(body_cls)
        epoch = st_.epoch
        # Re-realizing the same real gap is not a change: no epoch bump,
        # memo retained.
        assert not policy.set_nominal_gap(body_cls, 13)
        assert st_.epoch == epoch
        assert obj.obj_id in st_.decisions

    def test_gap_table_tracks_changes(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body_cls = gos.registry.get("Body")
        policy.set_nominal_gap(body_cls, 5)
        assert policy.gap_table[body_cls.class_id] == policy.gap(body_cls)
        policy.set_nominal_gap(body_cls, 29)
        assert policy.gap_table[body_cls.class_id] == policy.gap(body_cls) == 29

    def test_array_amortization_recomputed_after_gap_change(self):
        """The cached (sampled, logged, scaled) of an array must follow
        sampled_element_count/amortized_sample_bytes across gap changes."""
        from repro.core.array_sampling import (
            amortized_sample_bytes,
            sampled_element_count,
        )

        gos = gos_with_classes()
        policy = SamplingPolicy()
        arr_cls = gos.registry.get("double[]")
        arrs = [gos.allocate(arr_cls, 0, length=50) for _ in range(8)]
        for gap_nominal in (7, 23):
            policy.set_nominal_gap(arr_cls, gap_nominal)
            gap = policy.gap(arr_cls)
            for a in arrs:
                sampled, logged, scaled = policy.decision(a)
                assert sampled == (sampled_element_count(a.seq, a.length, gap) > 0)
                assert logged == amortized_sample_bytes(a, gap)
                assert scaled == logged * gap
        # And the second pass was served against the *new* gap: at least
        # one array's decision tuple changed between the two gaps.
        policy2 = SamplingPolicy()
        policy2.set_nominal_gap(arr_cls, 7)
        old = [policy2.decision(a) for a in arrs]
        assert [policy.decision(a) for a in arrs] != old


class TestBatchDecisions:
    """decide_batch mirrors decision() exactly and shares its memo."""

    def test_batch_matches_scalar_in_order(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        arr = gos.registry.get("double[]")
        policy.set_nominal_gap(body, 5)
        policy.set_nominal_gap(arr, 7)
        objs = [gos.allocate(body, 0) for _ in range(30)]
        objs += [gos.allocate(arr, 0, length=40) for _ in range(10)]
        objs += objs[:7]  # repeats exercise the memo
        assert policy.decide_batch(objs) == [policy.decision(o) for o in objs]

    def test_batch_respects_epoch_invalidation(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        objs = [gos.allocate(body, 0) for _ in range(16)]
        policy.set_nominal_gap(body, 5)
        before = policy.decide_batch(objs)
        policy.set_nominal_gap(body, 13)
        after = policy.decide_batch(objs)
        assert after != before
        assert after == [policy.decision(o) for o in objs]

    def test_batch_interleaved_classes(self):
        """Class changes mid-batch reload the right per-class state."""
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        arr = gos.registry.get("double[]")
        policy.set_nominal_gap(body, 5)
        policy.set_nominal_gap(arr, 7)
        mixed = []
        for i in range(12):
            mixed.append(gos.allocate(body, 0))
            mixed.append(gos.allocate(arr, 0, length=25))
        assert policy.decide_batch(mixed) == [policy.decision(o) for o in mixed]

    def test_batch_on_unseen_class_creates_state(self):
        gos = gos_with_classes()
        policy = SamplingPolicy()
        body = gos.registry.get("Body")
        objs = [gos.allocate(body, 0) for _ in range(4)]
        out = policy.decide_batch(objs)
        assert all(sampled for sampled, _, _ in out)  # default gap 1
