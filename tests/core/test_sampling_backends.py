"""Tests for the pluggable sampling backends (hash / Poisson / hybrid)
and their integration with the policy, profiler and replay layers."""

import math
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.sampling import (
    BACKENDS,
    HashBackend,
    HybridBackend,
    PoissonByteBackend,
    PrimeGapBackend,
    SamplingPolicy,
    resolve_backend,
)
from repro.heap.heap import GlobalObjectSpace
from repro.util.primes import is_prime

SRC = Path(__file__).resolve().parents[2] / "src"


def gos_with_classes():
    gos = GlobalObjectSpace()
    gos.registry.define("Body", 96)
    gos.registry.define("double[]", is_array=True, element_size=8)
    gos.registry.define("Small", 64)
    return gos


def make_policy(backend, gos, rate=4):
    policy = SamplingPolicy(backend=backend)
    for jclass in gos.registry:
        policy.set_rate(jclass, rate)
    return policy


# ---------------------------------------------------------------------------
# registry / resolution
# ---------------------------------------------------------------------------


class TestResolution:
    def test_default_is_prime_gap(self):
        assert isinstance(resolve_backend(None), PrimeGapBackend)
        assert SamplingPolicy().backend.name == "prime_gap"

    def test_registry_names(self):
        assert set(BACKENDS) == {"prime_gap", "poisson", "hash", "hybrid"}
        for name, ctor in sorted(BACKENDS.items()):
            assert resolve_backend(name).name == name
            assert ctor.name == name

    def test_instance_passthrough(self):
        be = HashBackend(seed=7)
        assert resolve_backend(be) is be

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown sampling backend"):
            resolve_backend("bogus")
        with pytest.raises(TypeError):
            resolve_backend(3.14)


# ---------------------------------------------------------------------------
# prime-gap backend: byte-identity with the historical decision logic
# ---------------------------------------------------------------------------


class TestPrimeGapIdentity:
    def test_scalar_divisibility_preserved(self):
        gos = gos_with_classes()
        policy = make_policy(None, gos, rate=1)
        body = gos.registry.get("Body")
        gap = policy.gap(body)
        assert is_prime(gap)
        for _ in range(5 * gap):
            obj = gos.allocate("Body", home_node=0)
            sampled, logged, scaled = policy.decision(obj)
            assert sampled == (obj.seq % gap == 0)
            if sampled:
                assert logged == body.instance_size
                assert scaled == logged * gap

    def test_memo_shared_between_scalar_and_batch(self):
        gos = gos_with_classes()
        policy = make_policy("prime_gap", gos, rate=1)
        objs = [gos.allocate("Body", home_node=0) for _ in range(200)]
        batch = policy.decide_batch(objs)
        scalar = [policy.decision(o) for o in objs]
        assert batch == scalar
        # Each object was evaluated exactly once (the scalar pass hit the
        # memo the batch pass filled).
        samples, skips = policy.backend.totals()
        assert samples + skips == len(objs)


# ---------------------------------------------------------------------------
# hash backend
# ---------------------------------------------------------------------------


class TestHashBackend:
    def test_deterministic_across_instances(self):
        gos_a, gos_b = gos_with_classes(), gos_with_classes()
        pa = make_policy(HashBackend(seed=3), gos_a)
        pb = make_policy(HashBackend(seed=3), gos_b)
        objs_a = [gos_a.allocate("Body", home_node=0) for _ in range(500)]
        objs_b = [gos_b.allocate("Body", home_node=0) for _ in range(500)]
        assert [pa.decision(o) for o in objs_a] == [pb.decision(o) for o in objs_b]

    def test_deterministic_across_processes(self):
        """The selection key comes from seeded_rng, so a fresh process
        must select exactly the same object ids."""
        prog = (
            "from repro.core.sampling import HashBackend, SamplingPolicy\n"
            "from repro.heap.heap import GlobalObjectSpace\n"
            "gos = GlobalObjectSpace()\n"
            "gos.registry.define('Body', 96)\n"
            "policy = SamplingPolicy(backend=HashBackend(seed=3))\n"
            "policy.set_rate(gos.registry.get('Body'), 4)\n"
            "objs = [gos.allocate('Body', home_node=0) for _ in range(300)]\n"
            "print(''.join('1' if policy.is_sampled(o) else '0' for o in objs))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", prog],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        gos = gos_with_classes()
        policy = make_policy(HashBackend(seed=3), gos)
        objs = [gos.allocate("Body", home_node=0) for _ in range(300)]
        here = "".join("1" if policy.is_sampled(o) else "0" for o in objs)
        assert out == here
        assert "1" in here and "0" in here

    def test_scalar_rate_realized(self):
        """Sampled fraction over many scalars approximates 1/gap."""
        gos = gos_with_classes()
        policy = make_policy(HashBackend(seed=0), gos, rate=4)
        body = gos.registry.get("Body")
        gap = policy.gap(body)
        n = 20_000
        objs = [gos.allocate("Body", home_node=0) for _ in range(n)]
        frac = sum(policy.is_sampled(o) for o in objs) / n
        assert frac == pytest.approx(1.0 / gap, rel=0.25)

    def test_array_probability_matches_prime_gap_shape(self):
        """Arrays longer than the gap are always sampled (any-element
        rule); shorter arrays are sampled with probability length/gap."""
        gos = gos_with_classes()
        policy = make_policy(HashBackend(seed=1), gos, rate=4)
        arr = gos.registry.get("double[]")
        gap = policy.gap(arr)
        assert gap > 1
        long = [gos.allocate("double[]", home_node=0, length=gap) for _ in range(50)]
        assert all(policy.is_sampled(o) for o in long)
        n = 8_000
        short_len = max(1, gap // 3)
        short = [gos.allocate("double[]", home_node=0, length=short_len) for _ in range(n)]
        frac = sum(policy.is_sampled(o) for o in short) / n
        assert frac == pytest.approx(short_len / gap, rel=0.2)

    def test_scaled_bytes_horvitz_thompson(self):
        gos = gos_with_classes()
        policy = make_policy(HashBackend(seed=0), gos, rate=4)
        body = gos.registry.get("Body")
        gap = policy.gap(body)
        obj = gos.allocate("Body", home_node=0)
        sampled, logged, scaled = policy.decision(obj)
        assert logged == body.instance_size
        assert scaled == logged * gap

    def test_decide_batch_matches_scalar_vectorized(self):
        """The numpy batch lane (n >= 64) must agree bit-for-bit with the
        scalar kernel, mixed classes and arrays included."""
        gos = gos_with_classes()
        policy = make_policy(HashBackend(seed=5), gos, rate=4)
        objs = []
        for i in range(300):
            if i % 3 == 0:
                objs.append(gos.allocate("double[]", home_node=0, length=1 + i % 40))
            elif i % 3 == 1:
                objs.append(gos.allocate("Body", home_node=0))
            else:
                objs.append(gos.allocate("Small", home_node=0))
        fresh = make_policy(HashBackend(seed=5), gos, rate=4)
        assert policy.decide_batch(objs) == [fresh.decision(o) for o in objs]

    def test_no_resample_pass_needed(self):
        assert HashBackend().needs_resample_pass is False
        assert PrimeGapBackend().needs_resample_pass is True


# ---------------------------------------------------------------------------
# Poisson backend
# ---------------------------------------------------------------------------


class TestPoissonBackend:
    def test_inter_sample_distances_are_exponential(self):
        """Inter-sample byte distances follow Exp(λ) with
        λ = 1/(gap·unit): mean within 10% of 1/λ, variance within 25%
        of 1/λ² (object-granularity discretization adds ~1/gap bias)."""
        gos = GlobalObjectSpace()
        small = gos.registry.define("Small", 64)
        policy = SamplingPolicy(backend=PoissonByteBackend(seed=2))
        policy.set_rate(small, 1)  # 4096/64 = 64 -> prime gap near 64
        gap = policy.gap(small)
        unit = small.instance_size
        inv_lambda = gap * unit
        n = 120_000
        sampled_at = [
            i
            for i in range(n)
            if policy.is_sampled(gos.allocate("Small", home_node=0))
        ]
        assert len(sampled_at) > 500
        dist = np.diff(np.asarray(sampled_at)) * unit
        assert float(dist.mean()) == pytest.approx(inv_lambda, rel=0.10)
        assert float(dist.var()) == pytest.approx(inv_lambda**2, rel=0.25)

    def test_weight_is_inverse_probability(self):
        gos = GlobalObjectSpace()
        small = gos.registry.define("Small", 64)
        policy = SamplingPolicy(backend=PoissonByteBackend(seed=2))
        policy.set_rate(small, 1)
        gap = policy.gap(small)
        obj = gos.allocate("Small", home_node=0)
        p = -math.expm1(-1.0 / gap)
        _, logged, scaled = policy.decision(obj)
        assert logged == small.instance_size
        assert scaled == int(round(small.instance_size / p))

    def test_expected_gap_reflects_discretization(self):
        gos = GlobalObjectSpace()
        small = gos.registry.define("Small", 64)
        policy = SamplingPolicy(backend=PoissonByteBackend(seed=2))
        policy.set_rate(small, 1)
        gap = policy.gap(small)
        # 1/p for p = 1 - exp(-1/gap): slightly above the nominal gap.
        assert gap <= policy.expected_gap(small) <= gap + 1


# ---------------------------------------------------------------------------
# hybrid backend
# ---------------------------------------------------------------------------


class TestHybridBackend:
    def test_split_point_honored(self):
        gos = GlobalObjectSpace()
        tiny = gos.registry.define("Tiny", 48)
        big = gos.registry.define("Big", 512)
        arr = gos.registry.define("double[]", is_array=True, element_size=8)
        backend = HybridBackend(seed=4, split_bytes=256)
        policy = SamplingPolicy(backend=backend)
        for jc in (tiny, big, arr):
            policy.set_rate(jc, 4)
        t = gos.allocate("Tiny", home_node=0)
        b = gos.allocate("Big", home_node=0)
        a = gos.allocate("double[]", home_node=0, length=8)
        assert backend.route(t) is backend.poisson
        assert backend.route(b) is backend.hash
        assert backend.route(a) is backend.hash
        # The routed decision equals the sub-backend's own decision.
        assert policy.decision(t) == backend.poisson.decide(t)
        assert policy.decision(b) == backend.hash.decide(b)

    def test_split_bytes_validated(self):
        with pytest.raises(ValueError):
            HybridBackend(split_bytes=0)

    def test_class_stats_merged(self):
        gos = GlobalObjectSpace()
        tiny = gos.registry.define("Tiny", 48)
        big = gos.registry.define("Big", 512)
        backend = HybridBackend(seed=4)
        policy = SamplingPolicy(backend=backend)
        policy.set_rate(tiny, 4)
        policy.set_rate(big, 4)
        for _ in range(20):
            policy.decision(gos.allocate("Tiny", home_node=0))
            policy.decision(gos.allocate("Big", home_node=0))
        stats = backend.class_stats()
        assert set(stats) == {tiny.class_id, big.class_id}
        assert all(s + k == 20 for s, k in stats.values())


# ---------------------------------------------------------------------------
# dead-zone detection (the PAGE_HASH small-working-set failure mode)
# ---------------------------------------------------------------------------


class TestDeadZone:
    def test_small_working_set_flagged(self):
        """A class whose live population x inclusion probability is
        below the threshold is structurally biased and must be flagged,
        even when id reuse keeps hammering the same few objects."""
        gos = GlobalObjectSpace()
        rare = gos.registry.define("Rare", 96)
        common = gos.registry.define("Common", 96)
        policy = SamplingPolicy(backend=HashBackend(seed=0))
        policy.set_rate(rare, 1)  # gap ~41
        policy.set_rate(common, 1)
        for _ in range(30):
            gos.allocate("Rare", home_node=0)
        for _ in range(5_000):
            gos.allocate("Common", home_node=0)
        report = policy.backend.dead_zone_report(gos)
        flagged = {r["class"] for r in report}
        assert "Rare" in flagged
        assert "Common" not in flagged
        rec = next(r for r in report if r["class"] == "Rare")
        assert rec["population"] == 30
        assert rec["expected_samples"] < 2.0

    def test_heavy_id_reuse_does_not_unflag(self):
        """Re-deciding the same objects millions of times never changes
        a stateless selection — the dead zone is permanent, and probing
        it must not perturb the decision counters."""
        gos = GlobalObjectSpace()
        rare = gos.registry.define("Rare", 96)
        policy = SamplingPolicy(backend=HashBackend(seed=0))
        policy.set_rate(rare, 1)
        objs = [gos.allocate("Rare", home_node=0) for _ in range(10)]
        first = [policy.is_sampled(o) for o in objs]
        counts_before = policy.backend.totals()
        for _ in range(50):
            report = policy.backend.dead_zone_report(gos)
            assert [policy.backend.sampled_raw(o) for o in objs] == first
        assert policy.backend.totals() == counts_before
        assert {r["class"] for r in report} == {"Rare"}

    def test_full_sampling_never_flagged(self):
        gos = GlobalObjectSpace()
        gos.registry.define("Rare", 96)
        policy = SamplingPolicy(backend=HashBackend(seed=0))
        # gap 1 (default / "full"): every object sampled, nothing to flag.
        for _ in range(3):
            gos.allocate("Rare", home_node=0)
        assert policy.backend.dead_zone_report(gos) == []

    def test_hybrid_report_routes_probabilities(self):
        gos = GlobalObjectSpace()
        rare = gos.registry.define("Rare", 48)  # routes to poisson
        policy = SamplingPolicy(backend=HybridBackend(seed=0))
        policy.set_rate(rare, 1)
        for _ in range(10):
            gos.allocate("Rare", home_node=0)
        report = policy.backend.dead_zone_report(gos)
        assert {r["class"] for r in report} == {"Rare"}


# ---------------------------------------------------------------------------
# integration: profiler plumbing and rate-change behavior
# ---------------------------------------------------------------------------


class TestIntegration:
    def _suite(self, backend):
        from repro.core.profiler import ProfilerSuite
        from repro.runtime.djvm import DJVM

        djvm = DJVM(n_nodes=2, sampling_backend=backend)
        djvm.spawn_threads(2)
        return djvm, ProfilerSuite(djvm, correlation=True, send_oals=False)

    def test_djvm_backend_plumbing(self):
        djvm, suite = self._suite("hash")
        assert suite.policy.backend.name == "hash"
        assert suite.access_profiler.wants_batch_prime is True

    def test_default_backend_has_no_batch_prime_lane(self):
        djvm, suite = self._suite(None)
        assert suite.policy.backend.name == "prime_gap"
        assert suite.access_profiler.wants_batch_prime is False
        assert "fast_on_access" not in vars(suite.access_profiler)

    def test_stateless_rate_change_charges_no_resample(self):
        djvm, suite = self._suite("hash")
        jclass = djvm.gos.registry.define("Body", 96)
        ap = suite.access_profiler
        suite.policy.set_rate(jclass, 4)
        ap.notify_rate_change(jclass)
        assert ap._pending_resample == {}

    def test_memoized_rate_change_schedules_resample(self):
        djvm, suite = self._suite(None)
        jclass = djvm.gos.registry.define("Body", 96)
        ap = suite.access_profiler
        suite.policy.set_rate(jclass, 4)
        ap.notify_rate_change(jclass)
        assert any(
            jclass.class_id in pending
            for pending in ap._pending_resample.values()
        )

    def test_prime_batch_fills_and_invalidates(self):
        djvm, suite = self._suite("hash")
        gos = djvm.gos
        jclass = gos.registry.define("Body", 96)
        suite.policy.set_rate(jclass, 4)
        ap = suite.access_profiler
        objs = [gos.allocate("Body", home_node=0) for _ in range(100)]
        ap.prime_batch(objs)
        assert len(ap._primed) == 100
        assert ap._primed[objs[0].obj_id] == suite.policy.decision(objs[0])
        # A rate change invalidates the primed table via the generation.
        suite.policy.set_rate(jclass, 1)
        ap.notify_rate_change(jclass)
        assert ap._primed == {}

    def test_replay_filter_matches_direct_policy(self):
        """tcm_at_rate under a stateless backend equals filtering with
        the same policy applied directly (the frontier's foundation)."""
        from repro.analysis.experiments import tcm_at_rate
        from repro.core.oal import OALBatch

        gos = gos_with_classes()
        objs = [gos.allocate("Body", home_node=0) for _ in range(400)]
        batches = []
        for tid in (0, 1):  # both threads touch every object
            batch = OALBatch(thread_id=tid, interval_id=0)
            for o in objs:
                batch.add(o.obj_id, o.jclass.instance_size, o.jclass.class_id)
            batches.append(batch)
        via_replay = tcm_at_rate(batches, gos, 2, 4, backend=HashBackend(seed=9))
        policy = make_policy(HashBackend(seed=9), gos, rate=4)
        expected = sum(
            policy.scaled_bytes(o) for o in objs if policy.is_sampled(o)
        )
        assert via_replay[0, 1] == expected == via_replay[1, 0]
        assert expected > 0
