"""Tests for adaptive stack sampling (Fig. 8)."""

from repro.core.stack_sampler import StackSampler
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel

MS = 1_000_000


def make_thread():
    return SimThread(thread_id=0, node_id=0)


def sampler(**kw):
    return StackSampler(CostModel.gideon300(), **kw)


class TestTimer:
    def test_first_poll_arms_only(self):
        s = sampler(gap_ms=4)
        t = make_thread()
        t.stack.push(Frame("m", 2, refs={0: 1}))
        s.maybe_fire(t)
        assert s.samples_taken == 0

    def test_fires_after_gap(self):
        s = sampler(gap_ms=4)
        t = make_thread()
        t.stack.push(Frame("m", 2, refs={0: 1}))
        s.maybe_fire(t)      # arm
        t.clock.advance(5 * MS)
        s.maybe_fire(t)
        assert s.samples_taken == 1

    def test_no_catchup_storm(self):
        """One long op spanning many gaps yields one sample."""
        s = sampler(gap_ms=4)
        t = make_thread()
        t.stack.push(Frame("m", 2, refs={0: 1}))
        s.maybe_fire(t)
        t.clock.advance(100 * MS)
        s.maybe_fire(t)
        s.maybe_fire(t)
        assert s.samples_taken == 1

    def test_disabled_never_fires(self):
        s = sampler(enabled=False)
        t = make_thread()
        t.stack.push(Frame("m", 2))
        for _ in range(5):
            t.clock.advance(100 * MS)
            s.maybe_fire(t)
        assert s.samples_taken == 0


class TestTwoPhaseScan:
    def test_first_sample_is_raw_under_lazy(self):
        s = sampler(lazy=True)
        t = make_thread()
        f = Frame("m", 3, refs={1: 7})
        t.stack.push(f)
        s.sample_stack(t)
        assert f.visited
        sample = s.samples_for(0)[f.frame_uid]
        assert sample.raw
        assert s.frames_extracted == 0

    def test_immediate_mode_extracts_now(self):
        s = sampler(lazy=False)
        t = make_thread()
        f = Frame("m", 3, refs={1: 7})
        t.stack.push(f)
        s.sample_stack(t)
        sample = s.samples_for(0)[f.frame_uid]
        assert not sample.raw
        assert sample.slots == {1: 7}
        assert s.frames_extracted == 1

    def test_second_visit_converts_and_compares(self):
        s = sampler(lazy=True)
        t = make_thread()
        f = Frame("m", 3, refs={1: 7})
        t.stack.push(f)
        s.sample_stack(t)
        s.sample_stack(t)
        sample = s.samples_for(0)[f.frame_uid]
        assert not sample.raw
        assert sample.comparisons == 1
        assert sample.slots == {1: 7}

    def test_scan_stops_at_first_visited_frame(self):
        """Frames *below* the first visited frame are untouched: their
        slots cannot have changed while covered, so only the first
        visited frame is compared (the two-phase optimization)."""
        s = sampler()
        t = make_thread()
        bottom = Frame("bottom", 2, refs={0: 1})
        mid = Frame("mid", 2, refs={0: 2})
        t.stack.push(bottom)
        t.stack.push(mid)
        s.sample_stack(t)  # both raw + visited
        s.sample_stack(t)  # mid (first visited) converts + compares
        bottom_before = s.samples_for(0)[bottom.frame_uid]
        assert bottom_before.raw  # never reached below the first visited
        # Push a temporary; the next sample processes it and mid only.
        top = Frame("top", 2, refs={0: 9})
        t.stack.push(top)
        s.sample_stack(t)  # raw-captures top, compares mid again
        assert s.samples_for(0)[bottom.frame_uid].raw
        assert s.samples_for(0)[mid.frame_uid].comparisons == 2

    def test_probing_removes_changed_slots(self):
        s = sampler()
        t = make_thread()
        f = Frame("m", 4, refs={0: 5, 1: 6})
        t.stack.push(f)
        s.sample_stack(t)
        f.set_slot(1, 99)  # the frame is on top and mutates
        s.sample_stack(t)
        sample = s.samples_for(0)[f.frame_uid]
        assert sample.slots == {0: 5}

    def test_dead_frame_samples_discarded(self):
        s = sampler()
        t = make_thread()
        f = Frame("gone", 2, refs={0: 1})
        t.stack.push(f)
        s.sample_stack(t)
        t.stack.pop()
        t.stack.push(Frame("new", 2))
        s.sample_stack(t)
        assert f.frame_uid not in s.samples_for(0)

    def test_fresh_activation_not_confused_with_old(self):
        """A new activation of the same method at the same depth has its
        own uid and starts raw (the visited flag was cleared in the
        prologue)."""
        s = sampler()
        t = make_thread()
        t.stack.push(Frame("base", 1, refs={0: 3}))
        a = Frame("m", 2, refs={0: 1})
        t.stack.push(a)
        s.sample_stack(t)
        t.stack.pop()
        b = Frame("m", 2, refs={0: 2})
        t.stack.push(b)
        s.sample_stack(t)
        assert s.samples_for(0)[b.frame_uid].raw

    def test_empty_stack_no_sample(self):
        s = sampler()
        t = make_thread()
        s.sample_stack(t)
        assert s.samples_taken == 0


class TestCosts:
    def test_lazy_cheaper_for_dying_frames(self):
        """Temporary frames that never survive to a second visit must be
        cheaper under lazy extraction — the paper's Table V comparison."""

        def churn(lazy):
            s = sampler(lazy=lazy)
            t = make_thread()
            t.stack.push(Frame("base", 2, refs={0: 1}))
            for i in range(50):
                f = Frame(f"temp{i}", 8, refs={0: i})
                t.stack.push(f)
                s.sample_stack(t)
                t.stack.pop()
            return t.cpu.stack_sampling_ns

        assert churn(lazy=True) < churn(lazy=False)

    def test_probing_shrinks_comparison_cost(self):
        """Slots discarded by earlier probes are never compared again."""
        s = sampler()
        t = make_thread()
        f = Frame("m", 10, refs={i: i for i in range(10)})
        t.stack.push(f)
        s.sample_stack(t)
        s.sample_stack(t)  # extract + first compare: 10 slots
        for i in range(9):
            f.set_slot(i, None)
        before = t.cpu.stack_sampling_ns
        s.sample_stack(t)  # compares 10, drops 9
        mid_cost = t.cpu.stack_sampling_ns - before
        before = t.cpu.stack_sampling_ns
        s.sample_stack(t)  # compares only the 1 survivor
        last_cost = t.cpu.stack_sampling_ns - before
        assert last_cost < mid_cost


class TestInvariantRefs:
    def test_survivors_reported_topmost_first(self):
        """Stack growth between samples lets each stable frame become the
        first-visited frame once, converting it; invariants then come out
        topmost-first (the resolution heuristic's order)."""
        s = sampler()
        t = make_thread()
        bottom = Frame("bottom", 2, refs={0: 100})
        t.stack.push(bottom)
        s.sample_stack(t)          # bottom raw
        top = Frame("top", 2, refs={0: 200})
        t.stack.push(top)
        s.sample_stack(t)          # top raw; bottom converts + compares
        s.sample_stack(t)          # top converts + compares
        refs = s.invariant_refs(t, min_comparisons=1)
        assert refs == [200, 100]

    def test_raw_samples_not_reported(self):
        s = sampler()
        t = make_thread()
        t.stack.push(Frame("m", 2, refs={0: 5}))
        s.sample_stack(t)
        assert s.invariant_refs(t) == []

    def test_min_comparisons_threshold(self):
        s = sampler()
        t = make_thread()
        t.stack.push(Frame("m", 2, refs={0: 5}))
        s.sample_stack(t)
        s.sample_stack(t)
        assert s.invariant_refs(t, min_comparisons=1) == [5]
        assert s.invariant_refs(t, min_comparisons=2) == []

    def test_changed_slots_never_invariant(self):
        s = sampler()
        t = make_thread()
        f = Frame("m", 2, refs={0: 5, 1: 6})
        t.stack.push(f)
        s.sample_stack(t)
        f.set_slot(1, 7)
        s.sample_stack(t)
        f.set_slot(1, 8)
        s.sample_stack(t)
        assert s.invariant_refs(t) == [5]

    def test_deduplicated(self):
        s = sampler()
        t = make_thread()
        t.stack.push(Frame("a", 2, refs={0: 5}))
        t.stack.push(Frame("b", 2, refs={0: 5}))
        s.sample_stack(t)
        s.sample_stack(t)
        assert s.invariant_refs(t) == [5]
