"""The paper's Fig. 7 walkthrough, executed literally.

Five successive stack states demonstrate lazy extraction and the
two-phase scan; this test drives the sampler through the exact sequence
and checks each documented transition:

  state 1: frames A,B,C raw-captured
  state 2: C popped, D pushed  -> B (first visited) converts + compares;
                                  A stays raw; D raw-captured
  state 3: B,D popped; E,F pushed -> A converts + compares; E,F raw
  state 4: E,F popped; G pushed -> A compared again (non-invariants
                                  drop); G raw
  state 5: G survives          -> G converts + compares; A untouched
"""

from repro.core.stack_sampler import StackSampler
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel


def test_fig7_sequence():
    thread = SimThread(0, 0)
    sampler = StackSampler(CostModel.gideon300(), lazy=True)
    stack = thread.stack

    a = Frame("A", 4, refs={0: 10, 1: 11})
    b = Frame("B", 4, refs={0: 20})
    c = Frame("C", 4, refs={0: 30})
    stack.push(a)
    stack.push(b)
    stack.push(c)

    # --- state 1: all frames stored raw ---------------------------------
    sampler.sample_stack(thread)
    samples = sampler.samples_for(0)
    assert all(samples[f.frame_uid].raw for f in (a, b, c))
    assert sampler.frames_extracted == 0

    # --- state 2: C gone, D on top --------------------------------------
    stack.pop()  # C
    d = Frame("D", 4, refs={0: 40})
    stack.push(d)
    # B mutates a slot while it was (briefly) on top: the comparison at
    # this sample must catch it.
    b.set_slot(1, 21)
    sampler.sample_stack(thread)
    samples = sampler.samples_for(0)
    assert c.frame_uid not in samples          # discarded with the dead frame
    assert not samples[b.frame_uid].raw        # B converted + compared
    assert samples[b.frame_uid].comparisons == 1
    assert samples[a.frame_uid].raw            # A still untouched raw
    assert samples[d.frame_uid].raw            # D captured raw
    assert sampler.frames_extracted == 1

    # --- state 3: B and D gone, E and F on top ---------------------------
    stack.pop()  # D
    stack.pop()  # B
    e = Frame("E", 4, refs={0: 50})
    f = Frame("F", 4, refs={0: 60})
    stack.push(e)
    stack.push(f)
    sampler.sample_stack(thread)
    samples = sampler.samples_for(0)
    assert not samples[a.frame_uid].raw        # A processed at last
    assert samples[a.frame_uid].comparisons == 1
    assert samples[a.frame_uid].slots == {0: 10, 1: 11}
    assert samples[e.frame_uid].raw and samples[f.frame_uid].raw
    assert sampler.frames_extracted == 2

    # --- state 4: E and F gone, G on top ---------------------------------
    stack.pop()  # F
    stack.pop()  # E
    g = Frame("G", 4, refs={0: 70})
    stack.push(g)
    a.set_slot(1, 99)  # A's slot 1 is not invariant after all
    sampler.sample_stack(thread)
    samples = sampler.samples_for(0)
    assert samples[a.frame_uid].comparisons == 2
    assert samples[a.frame_uid].slots == {0: 10}   # non-invariant removed
    assert samples[g.frame_uid].raw

    # --- state 5: G survives ---------------------------------------------
    a_comparisons_before = samples[a.frame_uid].comparisons
    sampler.sample_stack(thread)
    samples = sampler.samples_for(0)
    assert not samples[g.frame_uid].raw            # G converted + compared
    assert samples[g.frame_uid].comparisons == 1
    # "leaving frame A untouched":
    assert samples[a.frame_uid].comparisons == a_comparisons_before

    # Final invariants: topmost-first, only surviving slots.
    refs = sampler.invariant_refs(thread, min_comparisons=1)
    assert refs == [70, 10]
