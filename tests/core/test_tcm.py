"""Tests for thread correlation map construction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.oal import OALBatch
from repro.core.tcm import accrual_pair_count, build_tcm, normalize_tcm, tcm_from_batches


class TestBuildTcm:
    def test_shared_object_accrues_pairwise(self):
        entries = [(0, 100, 64.0), (1, 100, 64.0)]
        tcm = build_tcm(entries, 3)
        assert tcm[0, 1] == 64.0
        assert tcm[1, 0] == 64.0
        assert tcm[0, 2] == 0.0

    def test_diagonal_zeroed_by_default(self):
        tcm = build_tcm([(0, 1, 10.0), (1, 1, 10.0)], 2)
        assert tcm[0, 0] == 0.0

    def test_diagonal_kept_on_request(self):
        tcm = build_tcm([(0, 1, 10.0)], 2, include_diagonal=True)
        assert tcm[0, 0] == 10.0

    def test_private_objects_contribute_nothing_offdiag(self):
        tcm = build_tcm([(0, 1, 10.0), (1, 2, 10.0)], 2)
        assert tcm[0, 1] == 0.0

    def test_duplicate_entries_do_not_double_count(self):
        tcm = build_tcm([(0, 1, 10.0), (0, 1, 10.0), (1, 1, 10.0)], 2)
        assert tcm[0, 1] == 10.0

    def test_three_way_sharing(self):
        entries = [(t, 5, 8.0) for t in range(3)]
        tcm = build_tcm(entries, 3)
        for i in range(3):
            for j in range(3):
                assert tcm[i, j] == (8.0 if i != j else 0.0)

    def test_bad_thread_id_rejected(self):
        with pytest.raises(ValueError):
            build_tcm([(5, 1, 1.0)], 2)
        with pytest.raises(ValueError):
            build_tcm([], 0)

    def test_empty(self):
        tcm = build_tcm([], 4)
        assert tcm.shape == (4, 4)
        assert (tcm == 0).all()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=20),
                st.floats(min_value=1, max_value=1e6),
            ),
            max_size=60,
        )
    )
    def test_symmetric_nonnegative_zero_diag(self, entries):
        tcm = build_tcm(entries, 6)
        assert (tcm >= 0).all()
        assert np.allclose(tcm, tcm.T)
        assert np.diagonal(tcm).sum() == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=40,
        )
    )
    def test_matches_naive_accrual(self, pairs):
        """The vectorized builder equals the paper's O(MN^2) triple loop."""
        size = 32.0
        entries = [(t, o, size) for t, o in pairs]
        tcm = build_tcm(entries, 4)
        naive = np.zeros((4, 4))
        threads_per_obj: dict[int, set[int]] = {}
        for t, o in pairs:
            threads_per_obj.setdefault(o, set()).add(t)
        for o, ts in threads_per_obj.items():
            for i in ts:
                for j in ts:
                    if i != j:
                        naive[i, j] += size
        assert np.allclose(tcm, naive)


class TestBatches:
    def batch(self, tid, entries):
        b = OALBatch(thread_id=tid, interval_id=1)
        for oid, size in entries:
            b.add(oid, size, class_id=0)
        return b

    def test_tcm_from_batches(self):
        batches = [
            self.batch(0, [(1, 10), (2, 20)]),
            self.batch(1, [(1, 10)]),
        ]
        tcm = tcm_from_batches(batches, 2)
        assert tcm[0, 1] == 10

    def test_accrual_pair_count(self):
        batches = [
            self.batch(0, [(1, 10), (2, 10)]),
            self.batch(1, [(1, 10)]),
        ]
        # object 1: 2 threads -> 4 pairs; object 2: 1 thread -> 1 pair.
        assert accrual_pair_count(batches) == 5


class TestNormalize:
    def test_peak_scaled_to_one(self):
        tcm = build_tcm([(0, 1, 50.0), (1, 1, 50.0)], 2)
        norm = normalize_tcm(tcm)
        assert norm.max() == 1.0

    def test_zero_matrix_stays_zero(self):
        assert (normalize_tcm(np.zeros((3, 3))) == 0).all()
