"""Tests for the HLRC protocol engine — coherence invariants driven
through the DJVM/interpreter."""

import pytest

from repro.dsm.states import RealState
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

from tests.conftest import simple_class, wrap_main


def two_node_setup():
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 64)
    obj = djvm.allocate(cls, home_node=0)
    t0 = djvm.spawn_thread(0)
    t1 = djvm.spawn_thread(1)
    return djvm, obj, t0, t1


class TestFaulting:
    def test_remote_first_access_faults_once(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.read(obj.obj_id), P.read(obj.obj_id), P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["faults"] == 1
        fetches = djvm.cluster.network.stats.count_by_kind.get(
            MessageKind.OBJECT_FETCH_DATA, 0
        )
        assert fetches == 1

    def test_home_access_never_faults(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.read(obj.obj_id), P.write(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["faults"] == 0

    def test_fault_installs_valid_copy(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
            }
        )
        record = djvm.hlrc.heaps[1].get(obj.obj_id)
        assert record is not None
        assert record.real_state is RealState.VALID


class TestCoherence:
    def test_reader_sees_writer_after_barrier(self):
        """Writer updates in interval 1; after the barrier the reader's
        cached copy must be invalidated and re-fetched (the fundamental
        HLRC guarantee)."""
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0), P.write(obj.obj_id), P.barrier(1), P.barrier(2)]),
                1: wrap_main(
                    [
                        P.read(obj.obj_id),  # fault #1: initial fetch
                        P.barrier(0),
                        P.barrier(1),
                        P.read(obj.obj_id),  # fault #2: invalidated by notice
                        P.barrier(2),
                    ]
                ),
            }
        )
        assert djvm.hlrc.counters["faults"] == 2
        assert djvm.hlrc.counters["invalidations"] >= 1

    def test_no_invalidation_without_sync(self):
        """Between synchronizations a stale copy stays readable (lazy
        release consistency allows it)."""
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.write(obj.obj_id), P.barrier(0)]),
                1: wrap_main(
                    [
                        P.read(obj.obj_id),
                        P.read(obj.obj_id),
                        P.read(obj.obj_id),
                        P.barrier(0),
                    ]
                ),
            }
        )
        # Only the initial fetch; the writer's update invalidates nothing
        # until thread 1 synchronizes (which happens at the final barrier,
        # after its last read).
        assert djvm.hlrc.counters["faults"] == 1

    def test_own_write_does_not_self_invalidate(self):
        """A writer's own cache copy reflects its applied diff and must
        not be refetched after its own release."""
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main(
                    [
                        P.write(obj.obj_id),   # fault + dirty
                        P.acquire(0),          # closes interval: diff flushed
                        P.read(obj.obj_id),    # must NOT fault again
                        P.release(0),
                        P.barrier(0),
                    ]
                ),
            }
        )
        assert djvm.hlrc.counters["faults"] == 1

    def test_diff_sent_to_home_on_interval_close(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.write(obj.obj_id), P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["diffs"] == 1
        diff_bytes = djvm.cluster.network.stats.bytes_by_kind.get(MessageKind.DIFF, 0)
        assert diff_bytes > 0
        assert djvm.gos.get(obj.obj_id).home_version == 1

    def test_home_write_publishes_notice_without_diff_message(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.write(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["notices"] == 1
        assert djvm.hlrc.counters["diffs"] == 0
        assert MessageKind.DIFF not in djvm.cluster.network.stats.bytes_by_kind


class TestIntervals:
    def test_at_most_once_summary_per_object(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.hlrc.keep_interval_history = True
        djvm.run(
            {
                0: wrap_main([P.read(obj.obj_id, repeat=5), P.read(obj.obj_id, repeat=3), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        history = djvm.hlrc.interval_history[0]
        # Exactly one summary for the object across the interval.
        iv = history[0]
        assert list(iv.accesses) == [obj.obj_id]
        assert iv.accesses[obj.obj_id].reads == 8

    def test_intervals_delimited_by_sync(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.hlrc.keep_interval_history = True
        djvm.run(
            {
                0: wrap_main(
                    [P.acquire(0), P.release(0), P.barrier(0)]
                ),
                1: wrap_main([P.barrier(0)]),
            }
        )
        reasons = [iv.close_reason for iv in djvm.hlrc.interval_history[0]]
        assert reasons == ["acquire", "release", "barrier", "end"]


class TestLocks:
    def test_mutual_exclusion_holder_tracked(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.acquire(0), P.write(obj.obj_id), P.release(0), P.barrier(0)]),
                1: wrap_main([P.acquire(0), P.write(obj.obj_id), P.release(0), P.barrier(0)]),
            }
        )
        lock = djvm.hlrc.sync.locks[0]
        assert lock.acquisitions == 2
        assert lock.holder is None
        assert lock.waiters == []

    def test_lock_transfers_update_visibility(self):
        """Write notices ride the lock grant: a parked requester whose
        grant follows the holder's release must invalidate its stale copy
        and re-fetch.

        Deterministic schedule: t0 (home node) runs first and takes the
        lock; t1 fetches the pre-write version, then parks on the lock;
        t0's release flushes the write and hands the lock to t1, whose
        next read must fault.
        """
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main(
                    [P.acquire(0), P.write(obj.obj_id), P.release(0), P.barrier(0)]
                ),
                1: wrap_main(
                    [
                        P.read(obj.obj_id),   # fault #1: fetches version 0
                        P.acquire(0),         # parks: t0 holds the lock
                        P.read(obj.obj_id),   # fault #2: invalidated at grant
                        P.release(0),
                        P.barrier(0),
                    ]
                ),
            }
        )
        assert djvm.hlrc.counters["faults"] == 2
        assert djvm.hlrc.counters["invalidations"] >= 1

    def test_release_without_hold_rejected(self):
        djvm, obj, t0, t1 = two_node_setup()
        # The static IR gate (IR005) rejects this before the runtime's
        # own check would; both are RuntimeError.
        with pytest.raises(RuntimeError, match="not held|released lock"):
            djvm.run(
                {
                    0: wrap_main([P.release(0), P.barrier(0)]),
                    1: wrap_main([P.barrier(0)]),
                }
            )


class TestBarriers:
    def test_barrier_aligns_clocks(self):
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.compute(10_000_000), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        # Both threads proceed past the barrier no earlier than the
        # slowest arrival.
        assert abs(t0.clock.now_ns - t1.clock.now_ns) < 1_000_000

    def test_barrier_distributes_notices(self):
        """Write notices published in the episode before a barrier must
        invalidate stale remote copies when the barrier releases.  The
        reader fetches before the writer writes (sequenced by barrier 0)."""
        djvm, obj, t0, t1 = two_node_setup()
        djvm.run(
            {
                0: wrap_main([P.barrier(0), P.write(obj.obj_id), P.barrier(1), P.barrier(2)]),
                1: wrap_main(
                    [
                        P.read(obj.obj_id),  # fault #1: fetches version 0
                        P.barrier(0),
                        P.barrier(1),        # notice applied at release
                        P.read(obj.obj_id),  # fault #2
                        P.barrier(2),
                    ]
                ),
            }
        )
        assert djvm.hlrc.counters["invalidations"] >= 1
        assert djvm.hlrc.counters["faults"] == 2


class TestHomeMaterialization:
    def test_home_copy_created_lazily(self):
        djvm, obj, t0, t1 = two_node_setup()
        assert djvm.hlrc.heaps[0].get(obj.obj_id) is None
        djvm.run(
            {
                0: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        record = djvm.hlrc.heaps[0].get(obj.obj_id)
        assert record is not None and record.is_home
