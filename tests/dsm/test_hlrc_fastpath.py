"""The HLRC access fast path must be observationally transparent.

The engine has two hook-dispatch routes: the single-hook fast dispatch
(``fast_on_access``, fired once per (interval, object) first touch) and
the generic keyword fan-out (fired on every access).  Registering a
second, inert hook forces the generic route, so running the same program
both ways and comparing protocol counters, per-thread clocks, and
logging totals pins down that the fast path changes *nothing* the
simulation can observe — including when prefetch bundles satisfy
accesses that would otherwise fault.
"""

from repro.core.profiler import ProfilerSuite
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

from tests.conftest import simple_class, wrap_main


class NullHook:
    """Cost-free hook whose only effect is forcing the generic fan-out
    (it does not provide ``fast_on_access``)."""

    def on_interval_open(self, thread):
        pass

    def on_access(self, thread, obj, **kw):
        pass

    def on_interval_close(self, thread, interval, sync_dst):
        pass


class StubPrefetcher:
    """Always bundles a fixed set of objects into any fault reply."""

    def __init__(self, extras):
        self.extras = extras

    def bundle_for(self, thread, obj):
        return [e for e in self.extras if e.obj_id != obj.obj_id]


def run_scenario(*, force_fanout: bool, with_prefetch: bool = False):
    """Two nodes ping-ponging writes over shared objects, under full
    sampling; returns every observable the fast path could perturb."""
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 64)
    objs = [djvm.allocate(cls, i % 2) for i in range(4)]
    djvm.spawn_threads(2)
    suite = ProfilerSuite(djvm, correlation=True)
    suite.set_full_sampling()
    if force_fanout:
        djvm.add_hook(NullHook())
    if with_prefetch:
        djvm.hlrc.prefetcher = StubPrefetcher(objs)
    ids = [o.obj_id for o in objs]
    programs = {
        0: wrap_main(
            [P.read(ids[0]), P.write(ids[1]), P.barrier(0)]
            + [P.read(ids[2], repeat=5), P.write(ids[0]), P.barrier(1)]
            + [P.read(ids[1]), P.read(ids[3]), P.barrier(2)]
        ),
        1: wrap_main(
            [P.read(ids[1]), P.write(ids[0]), P.barrier(0)]
            + [P.read(ids[3], repeat=5), P.write(ids[2]), P.barrier(1)]
            + [P.read(ids[0]), P.read(ids[2]), P.barrier(2)]
        ),
    }
    djvm.run(programs)
    return {
        "counters": dict(djvm.hlrc.counters),
        "clocks": [t.clock.now_ns for t in djvm.threads],
        "cpu_oal_ns": [t.cpu.oal_logging_ns for t in djvm.threads],
        "logged": suite.access_profiler.total_logged,
        "fetches": djvm.cluster.network.stats.count_by_kind.get(
            MessageKind.OBJECT_FETCH_DATA, 0
        ),
    }


class TestFastDispatchTransparency:
    def test_counters_and_clocks_match_generic_fanout(self):
        fast = run_scenario(force_fanout=False)
        slow = run_scenario(force_fanout=True)
        assert fast == slow
        # The scenario actually exercises the interesting machinery.
        assert fast["counters"]["faults"] > 0
        assert fast["counters"]["invalidations"] > 0
        assert fast["logged"] > 0

    def test_prefetch_bundle_hits_match_generic_fanout(self):
        fast = run_scenario(force_fanout=False, with_prefetch=True)
        slow = run_scenario(force_fanout=True, with_prefetch=True)
        assert fast == slow
        # Bundles satisfy accesses that fault without prefetching.
        plain = run_scenario(force_fanout=False)
        assert fast["counters"]["faults"] < plain["counters"]["faults"]

    def test_valid_copy_hit_adds_no_protocol_work(self):
        """Re-reading a valid copy must not fault, invalidate, or send."""
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 64)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_threads(2)
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.read(obj.obj_id)] * 50 + [P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["faults"] == 1
        fetches = djvm.cluster.network.stats.count_by_kind.get(
            MessageKind.OBJECT_FETCH_DATA, 0
        )
        assert fetches == 1
