"""Tests for object home migration (the Section VI extension)."""

import pytest

from repro.dsm.homemigration import DominantWriterPolicy, HomeMigrationEngine
from repro.dsm.states import RealState
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

from tests.conftest import simple_class, wrap_main


def setup(n_nodes=2):
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 256)
    obj = djvm.allocate(cls, 0)
    for n in range(n_nodes):
        djvm.spawn_thread(n)
    engine = HomeMigrationEngine(djvm.hlrc)
    return djvm, obj, engine


class TestMechanism:
    def test_rehome_moves_authority(self):
        djvm, obj, engine = setup()
        engine.migrate_home(obj, 1)
        assert obj.home_node == 1
        new_rec = djvm.hlrc.heaps[1].get(obj.obj_id)
        assert new_rec is not None and new_rec.is_home
        assert engine.stats.migrations == 1
        assert engine.stats.bytes_shipped == obj.size_bytes

    def test_old_home_becomes_valid_cache(self):
        djvm, obj, engine = setup()
        # Materialize the old home copy first.
        djvm.run(
            {
                0: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        engine.migrate_home(obj, 1)
        old_rec = djvm.hlrc.heaps[0].get(obj.obj_id)
        assert old_rec is not None
        assert old_rec.real_state is RealState.VALID

    def test_noop_when_already_home(self):
        djvm, obj, engine = setup()
        engine.migrate_home(obj, 0)
        assert engine.stats.migrations == 0

    def test_bad_target_rejected(self):
        djvm, obj, engine = setup()
        with pytest.raises(ValueError):
            engine.migrate_home(obj, 9)

    def test_rehome_publishes_notice(self):
        djvm, obj, engine = setup()
        before = len(djvm.hlrc.notices)
        engine.migrate_home(obj, 1)
        assert len(djvm.hlrc.notices) == before + 1

    def test_payload_and_directory_messages_sent(self):
        djvm, obj, engine = setup()
        engine.migrate_home(obj, 1)
        stats = djvm.cluster.network.stats
        assert stats.count_by_kind.get(MessageKind.OBJECT_FETCH_DATA, 0) == 1
        assert stats.count_by_kind.get(MessageKind.CONTROL, 0) == 1

    def test_writes_after_rehome_are_home_writes(self):
        """After re-homing to the writer's node, its writes stop
        producing diff messages."""
        djvm, obj, engine = setup()
        engine.migrate_home(obj, 1)
        djvm.run(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.write(obj.obj_id), P.barrier(0)]),
            }
        )
        assert djvm.hlrc.counters["diffs"] == 0
        assert obj.home_version >= 2  # rehome bump + home-write notice


class TestDominantWriterPolicy:
    def run_policy(self, writer_rounds=6, threshold=0.6, cooldown=2, min_writes=3):
        djvm, obj, engine = setup()
        policy = DominantWriterPolicy(
            engine,
            threshold=threshold,
            min_writes=min_writes,
            cooldown_intervals=cooldown,
        )
        djvm.add_hook(policy)
        ops1 = []
        ops0 = []
        for r in range(writer_rounds):
            ops1 += [P.write(obj.obj_id), P.barrier(r)]
            ops0 += [P.barrier(r)]
        djvm.run({0: wrap_main(ops0), 1: wrap_main(ops1)})
        return djvm, obj, engine, policy

    def test_rehomes_to_dominant_writer(self):
        djvm, obj, engine, policy = self.run_policy()
        assert obj.home_node == 1
        assert engine.stats.migrations >= 1

    def test_min_writes_gate(self):
        djvm, obj, engine, policy = self.run_policy(writer_rounds=2, min_writes=10)
        assert obj.home_node == 0
        assert engine.stats.migrations == 0

    def test_cooldown_prevents_thrashing(self):
        """Two alternating writers: hysteresis keeps re-homing bounded
        well below once-per-interval."""
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 256)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        djvm.spawn_thread(1)
        engine = HomeMigrationEngine(djvm.hlrc)
        policy = DominantWriterPolicy(
            engine, threshold=0.6, min_writes=2, cooldown_intervals=6
        )
        djvm.add_hook(policy)
        rounds = 12
        ops0, ops1 = [], []
        for r in range(rounds):
            # Alternate which thread writes in each round.
            if r % 2 == 0:
                ops0.append(P.write(obj.obj_id))
            else:
                ops1.append(P.write(obj.obj_id))
            ops0.append(P.barrier(r))
            ops1.append(P.barrier(r))
        djvm.run({0: wrap_main(ops0), 1: wrap_main(ops1)})
        assert engine.stats.per_object.get(obj.obj_id, 0) <= rounds // 4

    def test_invalid_config_rejected(self):
        djvm, obj, engine = setup()
        with pytest.raises(ValueError):
            DominantWriterPolicy(engine, threshold=0.4)
        with pytest.raises(ValueError):
            DominantWriterPolicy(engine, min_writes=0)


class TestEndToEndBenefit:
    def test_rehoming_cuts_remote_traffic(self):
        """A producer writing a remote-homed object every interval: home
        migration eliminates the recurring diffs."""

        def run(with_policy: bool):
            djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
            cls = simple_class(djvm, "Obj", 2048)
            objs = [djvm.allocate(cls, 0) for _ in range(8)]
            djvm.spawn_thread(0)
            djvm.spawn_thread(1)
            if with_policy:
                engine = HomeMigrationEngine(djvm.hlrc)
                djvm.add_hook(
                    DominantWriterPolicy(engine, threshold=0.6, min_writes=2)
                )
            rounds = 10
            ops1, ops0 = [], []
            for r in range(rounds):
                ops1 += [P.write(o.obj_id) for o in objs]
                ops1.append(P.barrier(r))
                ops0.append(P.barrier(r))
            djvm.run({0: wrap_main(ops0), 1: wrap_main(ops1)})
            return djvm.cluster.network.stats.gos_bytes

        assert run(True) < 0.7 * run(False)
