"""Tests for interval bookkeeping."""

from repro.dsm.intervals import IntervalRecord


class TestIntervalRecord:
    def test_touch_accumulates(self):
        iv = IntervalRecord(thread_id=0, interval_id=1)
        iv.touch(5, is_write=False, count=3, now_ns=10)
        iv.touch(5, is_write=True, count=2, now_ns=20)
        s = iv.accesses[5]
        assert s.reads == 3
        assert s.writes == 2
        assert s.total == 5
        assert (s.first_ns, s.last_ns) == (10, 20)

    def test_written_set(self):
        iv = IntervalRecord(0, 1)
        iv.touch(1, is_write=False, count=1, now_ns=0)
        iv.touch(2, is_write=True, count=1, now_ns=0)
        assert iv.written == {2}

    def test_first_access_order_preserved(self):
        iv = IntervalRecord(0, 1)
        for oid in (9, 3, 7):
            iv.touch(oid, is_write=False, count=1, now_ns=0)
        assert list(iv.accesses) == [9, 3, 7]

    def test_duration(self):
        iv = IntervalRecord(0, 1, start_ns=100)
        iv.end_ns = 300
        assert iv.duration_ns == 200
        iv.end_ns = 50
        assert iv.duration_ns == 0
