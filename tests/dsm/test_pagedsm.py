"""Tests for the page-grained tracking baseline (Fig. 1 machinery)."""

from repro.core.tcm import build_tcm
from repro.dsm.pagedsm import PageGrainTracker
from repro.heap.pages import PageMap
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


def setup(n_objects: int = 8, obj_size: int = 100):
    """Small objects packed onto one page: the canonical false-sharing
    configuration.  Threads access disjoint objects."""
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Small", obj_size)
    objs = [djvm.allocate(cls, 0) for _ in range(n_objects)]
    djvm.spawn_thread(0)
    djvm.spawn_thread(1)
    pagemap = PageMap(page_size=4096)
    pagemap.place_all(djvm.gos)
    tracker = PageGrainTracker(pagemap)
    djvm.add_hook(tracker)
    return djvm, objs, tracker


class TestPageGrainTracker:
    def test_disjoint_objects_same_page_appear_shared(self):
        """The false-sharing effect: threads touching different objects
        on the same page look correlated at page grain."""
        djvm, objs, tracker = setup()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[5].obj_id), P.barrier(0)]),
            }
        )
        induced = build_tcm(tracker.induced_entries(), 2)
        assert induced[0, 1] > 0  # page-level phantom correlation
        assert tracker.false_sharing_degree() == 2.0

    def test_object_grain_sees_no_sharing(self):
        """Contrast: the object-grain inherent map for the same run is
        zero off-diagonal."""
        djvm, objs, tracker = setup()
        from repro.core.profiler import ProfilerSuite

        suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
        suite.set_full_sampling()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[5].obj_id), P.barrier(0)]),
            }
        )
        inherent = suite.tcm()
        assert inherent[0, 1] == 0

    def test_objects_on_distinct_pages_not_conflated(self):
        djvm, objs, tracker = setup(n_objects=2, obj_size=5000)
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id), P.barrier(0)]),
                1: wrap_main([P.read(objs[1].obj_id), P.barrier(0)]),
            }
        )
        induced = build_tcm(tracker.induced_entries(), 2)
        # 5000-byte objects share only the boundary page (obj 0 spans
        # pages 0-1, obj 1 spans 1-2), so some overlap remains — but the
        # same-page phantom must be weaker than true co-access would be.
        assert induced[0, 1] <= tracker.pagemap.page_size

    def test_at_most_once_per_interval(self):
        djvm, objs, tracker = setup()
        djvm.run(
            {
                0: wrap_main([P.read(objs[0].obj_id, repeat=50), P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
            }
        )
        page = tracker.pagemap.pages_of(objs[0].obj_id)[0]
        assert tracker.page_touches[(0, page)] == 1

    def test_range_aware_array_access(self):
        """A thread touching a narrow slice of a large array must not be
        charged with the array's full page span."""
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        arr_cls = djvm.define_class("big[]", is_array=True, element_size=8)
        arr = djvm.allocate(arr_cls, 0, length=4096)  # 32 KB = 9 pages
        djvm.spawn_thread(0)
        pagemap = PageMap()
        pagemap.place_all(djvm.gos)
        tracker = PageGrainTracker(pagemap)
        djvm.add_hook(tracker)
        djvm.run({0: wrap_main([P.read(arr.obj_id, n_elems=4, elem_off=0), P.barrier(0)])})
        touched = [p for (tid, p) in tracker.page_touches if tid == 0]
        assert len(touched) <= 2
