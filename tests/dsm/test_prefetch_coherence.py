"""Coherence interplay of connectivity prefetching: bundled copies must
behave exactly like individually faulted copies under invalidation."""

from repro.core.prefetch import ConnectivityPrefetcher
from repro.dsm.states import RealState
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


def setup():
    """Node 0 homes a parent+child pair; thread 0 (node 1) learns the
    path, thread 1 (node 0) writes the child."""
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Node", 128)
    pairs = []
    for _ in range(6):
        child = djvm.allocate(cls, 0)
        parent = djvm.allocate(cls, 0, refs=[child.obj_id])
        pairs.append((parent, child))
    reader = djvm.spawn_thread(1)
    writer = djvm.spawn_thread(0)
    prefetcher = ConnectivityPrefetcher(djvm.gos, threshold=0.5, min_faults=2)
    djvm.hlrc.prefetcher = prefetcher
    djvm.add_hook(prefetcher)
    return djvm, pairs, prefetcher


class TestPrefetchedCopyCoherence:
    def test_bundled_copy_invalidated_by_later_write(self):
        djvm, pairs, prefetcher = setup()
        # Reader warms the path (parent then child) so late pairs bundle;
        # then the writer updates the last child; after the barrier the
        # reader's re-read of that child must fault fresh data.
        last_parent, last_child = pairs[-1]
        reader_ops = []
        for parent, child in pairs:
            reader_ops += [P.read(parent.obj_id), P.read(child.obj_id)]
        reader_ops += [P.barrier(0), P.barrier(1), P.read(last_child.obj_id), P.barrier(2)]
        writer_ops = [
            P.barrier(0),
            P.write(last_child.obj_id),
            P.barrier(1),
            P.barrier(2),
        ]
        djvm.run({0: wrap_main(reader_ops), 1: wrap_main(writer_ops)})
        assert prefetcher.bundled_objects > 0  # the path was learned
        record = djvm.hlrc.heaps[1].get(last_child.obj_id)
        assert record is not None
        # The reader refetched after invalidation: version is current.
        assert record.fetched_version == djvm.gos.get(last_child.obj_id).home_version
        assert record.fetched_version >= 1
        assert djvm.hlrc.counters["invalidations"] >= 1

    def test_bundled_copies_carry_fault_time_version(self):
        """A bundled copy's fetched_version equals the home version at
        bundle time — never newer, never a stale zero."""
        djvm, pairs, prefetcher = setup()
        ops = []
        for parent, child in pairs:
            ops += [P.read(parent.obj_id), P.read(child.obj_id)]
        djvm.run({0: wrap_main(ops + [P.barrier(0)]), 1: wrap_main([P.barrier(0)])})
        heap = djvm.hlrc.heaps[1]
        for parent, child in pairs:
            record = heap.get(child.obj_id)
            assert record is not None
            obj = djvm.gos.get(child.obj_id)
            assert record.fetched_version == obj.home_version
            assert record.real_state is RealState.VALID

    def test_prefetching_changes_no_protocol_outcomes(self):
        """Faults drop, but diffs/notices/intervals (schedule-independent
        protocol state) are identical with and without the prefetcher."""
        def run(enable):
            djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
            cls = simple_class(djvm, "Node", 128)
            pairs = []
            for _ in range(6):
                child = djvm.allocate(cls, 0)
                parent = djvm.allocate(cls, 0, refs=[child.obj_id])
                pairs.append((parent, child))
            djvm.spawn_thread(1)
            if enable:
                prefetcher = ConnectivityPrefetcher(djvm.gos, threshold=0.5, min_faults=2)
                djvm.hlrc.prefetcher = prefetcher
                djvm.add_hook(prefetcher)
            ops = []
            for parent, child in pairs:
                ops += [P.read(parent.obj_id), P.read(child.obj_id), P.write(child.obj_id)]
            djvm.run({0: wrap_main(ops + [P.barrier(0)])})
            return djvm.hlrc.counters

        plain = run(False)
        prefetched = run(True)
        for key in ("diffs", "notices", "intervals"):
            assert plain[key] == prefetched[key]
        assert prefetched["faults"] < plain["faults"]
