"""Tests for copy-state records."""

from repro.dsm.states import CopyRecord, RealState


class TestCopyRecord:
    def test_home_never_invalidated(self):
        r = CopyRecord(0, RealState.HOME)
        r.invalidate()
        assert r.real_state is RealState.HOME
        assert r.is_home

    def test_valid_cache_invalidates(self):
        r = CopyRecord(0, RealState.VALID)
        r.invalidate()
        assert r.real_state is RealState.INVALID

    def test_invalid_stays_invalid(self):
        r = CopyRecord(0, RealState.INVALID)
        r.invalidate()
        assert r.real_state is RealState.INVALID

    def test_clear_interval_state(self):
        r = CopyRecord(0, RealState.VALID, dirty_bytes=100, has_twin=True)
        r.writers.add(3)
        r.clear_interval_state()
        assert r.dirty_bytes == 0
        assert not r.has_twin
        assert r.writers == set()
