"""Tests for distributed locks and barriers."""

import pytest

from repro.dsm.sync import Barrier, DistributedLock, SyncRegistry


class TestDistributedLock:
    def test_grant_time_free_lock(self):
        lock = DistributedLock(0, manager_node=0)
        assert lock.grant_time(100) == 100

    def test_grant_time_waits_for_availability(self):
        lock = DistributedLock(0, manager_node=0, available_at_ns=500)
        assert lock.grant_time(100) == 500
        assert lock.grant_time(900) == 900


class TestBarrier:
    def test_last_arrival_completes(self):
        b = Barrier(0, parties=3)
        assert not b.arrive(0, 10)
        assert not b.arrive(1, 30)
        assert b.arrive(2, 20)

    def test_release_all(self):
        b = Barrier(0, parties=2)
        b.arrive(0, 10)
        b.arrive(1, 25)
        release_ns, waiters = b.release_all()
        assert release_ns == 25
        assert set(waiters) == {0, 1}
        assert b.episodes == 1
        # Reusable for the next episode.
        assert not b.arrive(0, 50)

    def test_double_arrival_rejected(self):
        b = Barrier(0, parties=2)
        b.arrive(0, 10)
        with pytest.raises(RuntimeError):
            b.arrive(0, 20)

    def test_premature_release_rejected(self):
        b = Barrier(0, parties=2)
        b.arrive(0, 10)
        with pytest.raises(RuntimeError):
            b.release_all()


class TestSyncRegistry:
    def test_lock_created_once(self):
        reg = SyncRegistry(master_node=3)
        a = reg.lock(7)
        assert a.manager_node == 3
        assert reg.lock(7) is a

    def test_barrier_parties_must_match(self):
        reg = SyncRegistry()
        reg.barrier(0, 4)
        with pytest.raises(ValueError):
            reg.barrier(0, 8)
        assert reg.barrier(0, 4).parties == 4
