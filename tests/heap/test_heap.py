"""Tests for the global object space and local heaps."""

import pytest

from repro.heap.heap import GlobalObjectSpace, LocalHeap


def make_gos():
    gos = GlobalObjectSpace()
    gos.registry.define("Obj", 64)
    gos.registry.define("double[]", is_array=True, element_size=8)
    return gos


class TestGlobalObjectSpace:
    def test_allocate_scalar(self):
        gos = make_gos()
        a = gos.allocate("Obj", home_node=1)
        b = gos.allocate("Obj", home_node=2)
        assert (a.obj_id, b.obj_id) == (0, 1)
        assert (a.seq, b.seq) == (0, 1)
        assert a.home_node == 1

    def test_array_consumes_length_seqs(self):
        gos = make_gos()
        a = gos.allocate("double[]", 0, length=10)
        b = gos.allocate("double[]", 0, length=3)
        assert a.seq == 0
        assert b.seq == 10

    def test_array_without_length_rejected(self):
        gos = make_gos()
        with pytest.raises(ValueError):
            gos.allocate("double[]", 0)

    def test_scalar_with_length_rejected(self):
        gos = make_gos()
        with pytest.raises(ValueError):
            gos.allocate("Obj", 0, length=4)

    def test_refs_stored(self):
        gos = make_gos()
        a = gos.allocate("Obj", 0)
        b = gos.allocate("Obj", 0, refs=[a.obj_id])
        assert b.refs == [a.obj_id]

    def test_objects_of_class(self):
        gos = make_gos()
        a = gos.allocate("Obj", 0)
        gos.allocate("double[]", 0, length=2)
        c = gos.allocate("Obj", 0)
        ids = [o.obj_id for o in gos.objects_of_class("Obj")]
        assert ids == [a.obj_id, c.obj_id]

    def test_total_bytes(self):
        gos = make_gos()
        gos.allocate("Obj", 0)
        gos.allocate("double[]", 0, length=10)
        assert gos.total_bytes() == 64 + 16 + 80

    def test_len_and_iter(self):
        gos = make_gos()
        gos.allocate("Obj", 0)
        gos.allocate("Obj", 1)
        assert len(gos) == 2
        assert [o.obj_id for o in gos] == [0, 1]


class TestLocalHeap:
    def test_put_get_evict(self):
        heap = LocalHeap(0)
        heap.put(5, "record")
        assert 5 in heap
        assert heap.get(5) == "record"
        heap.evict(5)
        assert 5 not in heap
        assert heap.get(5) is None
        heap.evict(5)  # idempotent

    def test_len(self):
        heap = LocalHeap(0)
        heap.put(1, "a")
        heap.put(2, "b")
        assert len(heap) == 2
