"""Tests for class metadata and sequence-number issuance."""

import pytest

from repro.heap.jclass import ClassRegistry, JClass


class TestJClass:
    def test_scalar_requires_size(self):
        with pytest.raises(ValueError):
            JClass(0, "Bad", 0)

    def test_array_requires_element_size(self):
        with pytest.raises(ValueError):
            JClass(0, "Bad[]", 16, is_array=True, element_size=0)

    def test_issue_seq_consecutive(self):
        c = JClass(0, "X", 8)
        assert c.issue_seq() == 0
        assert c.issue_seq() == 1
        assert c.issue_seq(5) == 2
        assert c.issue_seq() == 7

    def test_issue_seq_rejects_nonpositive(self):
        c = JClass(0, "X", 8)
        with pytest.raises(ValueError):
            c.issue_seq(0)


class TestClassRegistry:
    def test_define_and_get(self):
        reg = ClassRegistry()
        c = reg.define("Body", 96)
        assert reg.get("Body") is c
        assert reg.by_id(c.class_id) is c
        assert "Body" in reg

    def test_duplicate_rejected(self):
        reg = ClassRegistry()
        reg.define("Body", 96)
        with pytest.raises(ValueError):
            reg.define("Body", 96)

    def test_missing_get_raises(self):
        with pytest.raises(KeyError, match="not defined"):
            ClassRegistry().get("Nope")

    def test_ids_are_dense(self):
        reg = ClassRegistry()
        a = reg.define("A", 8)
        b = reg.define("B", 8)
        assert (a.class_id, b.class_id) == (0, 1)
        assert len(reg) == 2
        assert [c.name for c in reg] == ["A", "B"]

    def test_sequence_counters_are_per_class(self):
        reg = ClassRegistry()
        a = reg.define("A", 8)
        b = reg.define("B", 8)
        a.issue_seq(10)
        assert b.issue_seq() == 0
