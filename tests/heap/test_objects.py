"""Tests for heap objects."""

import pytest

from repro.heap.jclass import JClass
from repro.heap.objects import HeapObject


def scalar_cls():
    return JClass(0, "Obj", 64)


def array_cls():
    return JClass(1, "double[]", 16, is_array=True, element_size=8)


class TestHeapObject:
    def test_scalar_size(self):
        obj = HeapObject(0, scalar_cls(), seq=0, home_node=0)
        assert obj.size_bytes == 64
        assert not obj.is_array

    def test_array_size_includes_header_and_payload(self):
        obj = HeapObject(0, array_cls(), seq=0, home_node=0, length=10)
        assert obj.size_bytes == 16 + 80
        assert obj.is_array

    def test_element_seq(self):
        obj = HeapObject(0, array_cls(), seq=100, home_node=0, length=5)
        assert obj.element_seq(0) == 100
        assert obj.element_seq(4) == 104

    def test_element_seq_bounds(self):
        obj = HeapObject(0, array_cls(), seq=0, home_node=0, length=3)
        with pytest.raises(IndexError):
            obj.element_seq(3)
        with pytest.raises(IndexError):
            obj.element_seq(-1)

    def test_element_seq_on_scalar_rejected(self):
        obj = HeapObject(0, scalar_cls(), seq=0, home_node=0)
        with pytest.raises(TypeError):
            obj.element_seq(0)

    def test_add_ref(self):
        obj = HeapObject(0, scalar_cls(), seq=0, home_node=0)
        obj.add_ref(5)
        obj.add_ref(6)
        assert obj.refs == [5, 6]
