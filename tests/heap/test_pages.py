"""Tests for object-to-page packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.heap import GlobalObjectSpace
from repro.heap.pages import PageMap


def gos_with(sizes, homes=None):
    gos = GlobalObjectSpace()
    cls = gos.registry.define("Var[]", is_array=True, element_size=1)
    out = []
    for i, s in enumerate(sizes):
        home = 0 if homes is None else homes[i]
        # length chosen so payload+header == s (header is 16).
        out.append(gos.allocate(cls, home, length=max(s - 16, 1)))
    return gos, out


class TestPlacement:
    def test_small_objects_share_a_page(self):
        gos, objs = gos_with([100, 100, 100])
        pm = PageMap(page_size=4096)
        for o in objs:
            first, last = pm.place(o)
            assert first == last == 0
        assert set(pm.objects_on(0, 0)) == {0, 1, 2}

    def test_large_object_spans_pages(self):
        gos, objs = gos_with([10_000])
        pm = PageMap(page_size=4096)
        first, last = pm.place(objs[0])
        assert (first, last) == (0, 2)
        assert pm.pages_of(0) == [(0, 0), (0, 1), (0, 2)]

    def test_double_place_rejected(self):
        gos, objs = gos_with([100])
        pm = PageMap()
        pm.place(objs[0])
        with pytest.raises(ValueError):
            pm.place(objs[0])

    def test_per_node_heaps_are_disjoint(self):
        gos, objs = gos_with([100, 100], homes=[0, 1])
        pm = PageMap()
        pm.place_all(gos)
        assert pm.pages_of(0) == [(0, 0)]
        assert pm.pages_of(1) == [(1, 0)]

    def test_place_all_idempotent_for_placed(self):
        gos, objs = gos_with([100, 100])
        pm = PageMap()
        pm.place(objs[0])
        pm.place_all(gos)  # must not re-place object 0
        assert 1 in pm

    def test_n_pages(self):
        gos, objs = gos_with([4096, 100])
        pm = PageMap(page_size=4096)
        pm.place_all(gos)
        assert pm.n_pages(0) == 2
        assert pm.n_pages(3) == 0


class TestPagesOfRange:
    def test_subrange_touches_fewer_pages(self):
        gos, objs = gos_with([20_000])
        pm = PageMap(page_size=4096)
        pm.place(objs[0])
        all_pages = pm.pages_of(0)
        sub = pm.pages_of_range(0, 0, 100)
        assert len(sub) < len(all_pages)
        assert sub == [(0, 0)]

    def test_empty_range(self):
        gos, objs = gos_with([1000])
        pm = PageMap()
        pm.place(objs[0])
        assert pm.pages_of_range(0, 0, 0) == []

    def test_range_clamped_to_extent(self):
        gos, objs = gos_with([1000])
        pm = PageMap(page_size=4096)
        pm.place(objs[0])
        assert pm.pages_of_range(0, 500, 10**6) == [(0, 0)]

    @given(
        st.integers(min_value=1, max_value=30_000),
        st.integers(min_value=0, max_value=30_000),
        st.integers(min_value=1, max_value=30_000),
    )
    def test_subrange_is_subset_of_extent(self, size, off, length):
        gos, objs = gos_with([max(size, 17)])
        pm = PageMap(page_size=4096)
        pm.place(objs[0])
        sub = set(pm.pages_of_range(0, off, length))
        assert sub <= set(pm.pages_of(0))
