"""Integration: the online adaptive rate controller driving a windowed
collector over a live run."""

import numpy as np

from repro.analysis import experiments as E
from repro.core.adaptive import AdaptiveRateController, OfflineRateSearch
from repro.core.profiler import ProfilerSuite
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload

FAST = CostModel.fast_test()


def factory(rounds=12):
    return GroupSharingWorkload(
        n_threads=8,
        group_size=2,
        objects_per_group=64,
        private_per_thread=24,
        rounds=rounds,
        seed=9,
    )


class TestOnlineController:
    def run_controlled(self, threshold=0.05):
        wl = factory()
        djvm = E.build_djvm(wl, 4, costs=FAST)
        suite = ProfilerSuite(
            djvm, correlation=True, send_oals=False, window_batches=8
        )
        suite.set_rate_all(1)
        ctrl = AdaptiveRateController(threshold=threshold, ladder=(1, 2, 4, 8, 16))
        suite.attach_controller(ctrl)
        djvm.run(wl.programs())
        return wl, djvm, suite, ctrl

    def test_controller_settles(self):
        wl, djvm, suite, ctrl = self.run_controlled()
        assert ctrl.settled
        assert ctrl.decisions, "controller must have observed windows"

    def test_rate_changes_trigger_resampling(self):
        wl, djvm, suite, ctrl = self.run_controlled(threshold=0.0001)
        # An impossible threshold forces repeated rate climbs; every
        # change must charge a resampling pass somewhere.
        total_resampling = sum(
            t.cpu.resampling_ns for t in djvm.threads
        )
        assert suite.policy.rate_changes > 0
        assert total_resampling > 0

    def test_settled_map_is_accurate(self):
        wl, djvm, suite, ctrl = self.run_controlled()
        tcm = suite.tcm()
        truth = wl.true_tcm()
        from repro.core.accuracy import accuracy

        assert accuracy(tcm / tcm.max(), truth / truth.max(), "abs") > 0.85


class TestOfflineSearchOnRealWorkload:
    def test_search_picks_economical_rate(self):
        batches, gos, n, _ = E.collect_full_batches(lambda: factory(4), 4, costs=FAST)
        search = OfflineRateSearch(threshold=0.05, ladder=(1, 2, 4, 8, 16))
        chosen = search.run(lambda r: E.tcm_at_rate(batches, gos, n, r))
        # The chosen rate's map must be within ~2x the threshold of full.
        from repro.core.accuracy import absolute_error

        full = E.tcm_at_rate(batches, gos, n, "full")
        err = absolute_error(E.tcm_at_rate(batches, gos, n, chosen), full)
        assert err < 0.15
