"""Targeted tests for less-travelled branches across modules."""

import numpy as np
import pytest

from repro.analysis.svgplot import PALETTE, line_chart
from repro.analysis.trace import record_trace
from repro.core.costmodel import MigrationCostModel
from repro.core.profiler import ProfilerSuite
from repro.placement.balancer import CorrelationAwareBalancer
from repro.placement.runtime_balancer import OnlineRebalancer
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.interpreter import Interpreter
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload

from tests.conftest import simple_class, wrap_main

FAST = CostModel.fast_test()


class TestSvgEdges:
    def test_many_series_cycle_palette_and_dashes(self):
        series = {f"s{i}": [0.5, 0.6] for i in range(len(PALETTE) + 2)}
        svg = line_chart(series, ["a", "b"])
        assert svg.count("<polyline") == len(series)
        # Colors repeat once the palette is exhausted.
        assert svg.count(PALETTE[0]) >= 2


class TestTraceEdges:
    def test_drift_euclidean_metric(self):
        trace = record_trace(
            lambda: GroupSharingWorkload(n_threads=4, group_size=2, rounds=2),
            2,
            costs=FAST,
        )
        assert trace.drift_from(trace, metric="euc") == pytest.approx(0.0)


class TestInterpreterEdges:
    def test_barrier_parties_override(self):
        """A subset barrier: 3 threads, barrier over the 2 participants."""
        djvm = DJVM(n_nodes=2, costs=FAST)
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        for i in range(3):
            djvm.spawn_thread(i % 2)
        interp = Interpreter(djvm.hlrc, djvm.threads, barrier_parties=2)
        interp.attach_programs(
            {
                0: wrap_main([P.barrier(0)]),
                1: wrap_main([P.barrier(0)]),
                2: wrap_main([P.read(obj.obj_id)]),
            }
        )
        interp.run()
        assert djvm.hlrc.sync.barriers[0].episodes == 1

    def test_duplicate_thread_ids_rejected(self):
        djvm = DJVM(n_nodes=1, costs=FAST)
        t = djvm.spawn_thread(0)
        with pytest.raises(ValueError, match="duplicate"):
            Interpreter(djvm.hlrc, [t, t])

    def test_empty_thread_list_rejected(self):
        djvm = DJVM(n_nodes=1, costs=FAST)
        with pytest.raises(ValueError):
            Interpreter(djvm.hlrc, [])


class TestCostModelEdges:
    def test_frozen_dataclass(self):
        c = CostModel()
        with pytest.raises(Exception):
            c.state_check_ns = 5  # type: ignore[misc]

    def test_with_overrides_multiple(self):
        c = CostModel().with_overrides(state_check_ns=7, page_size=8192)
        assert (c.state_check_ns, c.page_size) == (7, 8192)


class TestRebalancerPrefetchPath:
    def test_prefetch_sticky_migrations(self):
        """The rebalancer's prefetch_sticky mode resolves and ships each
        migrant's sticky set.  Needs a workload with temporal access
        spread (Barnes-Hut) at real cost calibration so footprint phases
        and stack-sampling timers actually fire."""
        from repro.workloads import BarnesHutWorkload

        wl = BarnesHutWorkload(n_bodies=512, rounds=3, n_threads=8, seed=5)
        djvm = DJVM(n_nodes=4)  # default (calibrated) costs, ms-scale intervals
        wl.build(djvm, placement="round_robin")  # galaxy-blind start
        suite = ProfilerSuite(
            djvm, correlation=True, stack=True, footprint=True, send_oals=False
        )
        suite.set_rate_all(4)
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs),
            horizon_intervals=40,
        )
        rb = OnlineRebalancer(
            suite, balancer, djvm.migration, warmup_intervals=6, prefetch_sticky=True
        )
        djvm.add_timer(rb)
        djvm.run(wl.programs())
        assert rb.fired and rb.proposals
        # At least one migration carried a prefetched bundle.
        assert any(r.prefetched_objects > 0 for r in djvm.migration.results)


class TestHeatmapPassthrough:
    def test_width_geq_n_is_identity(self):
        from repro.analysis.heatmap import render_heatmap

        m = np.eye(3)
        assert render_heatmap(m, width=10) == render_heatmap(m)
