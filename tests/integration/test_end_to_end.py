"""End-to-end integration: full workload runs with profiling enabled,
checking the cross-cutting invariants the paper's evaluation rests on."""

import pytest

from repro.analysis import experiments as E
from repro.sim.costs import CostModel
from repro.workloads import BarnesHutWorkload, SORWorkload, WaterSpatialWorkload

FAST = CostModel.fast_test()


def bh_factory():
    return BarnesHutWorkload(n_bodies=512, rounds=2, n_threads=8, seed=3)


class TestOverheadStructure:
    def test_profiling_adds_bounded_overhead(self):
        """Correlation tracking at a moderate rate costs a few percent of
        execution time — the paper's headline claim."""
        base = E.run_baseline(bh_factory, 8).result.execution_time_ms
        prof = E.run_with_correlation(bh_factory, 8, rate=4).result.execution_time_ms
        overhead = (prof - base) / base
        assert overhead < 0.10
        assert overhead > -0.02  # sanity: profiling never speeds things up here

    def test_full_sampling_costs_more_than_sampled(self):
        cheap = E.run_with_correlation(bh_factory, 8, rate=1)
        full = E.run_with_correlation(bh_factory, 8, rate="full")
        assert (
            full.result.total_cpu.profiling_ns > cheap.result.total_cpu.profiling_ns
        )
        assert full.result.traffic.oal_bytes > cheap.result.traffic.oal_bytes

    def test_oal_traffic_fraction_of_gos(self):
        """OAL volume stays a modest fraction of protocol traffic below
        full sampling (Table III's regime)."""
        run = E.run_with_correlation(bh_factory, 8, rate=4)
        assert 0 < run.result.traffic.oal_bytes < 0.25 * run.result.traffic.gos_bytes

    def test_collect_only_cheaper_than_collect_and_send(self):
        collect = E.run_with_correlation(bh_factory, 8, rate="full", send_oals=False)
        send = E.run_with_correlation(bh_factory, 8, rate="full", send_oals=True)
        assert collect.result.traffic.oal_bytes == 0
        assert send.result.traffic.oal_bytes > 0

    def test_deterministic_runs(self):
        a = E.run_with_correlation(bh_factory, 8, rate=4)
        b = E.run_with_correlation(bh_factory, 8, rate=4)
        assert a.result.execution_time_ms == b.result.execution_time_ms
        assert a.result.counters == b.result.counters
        import numpy as np

        assert np.allclose(a.suite.tcm(), b.suite.tcm())


class TestAllWorkloadsUnderFullProfiling:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SORWorkload(n=128, rounds=2, n_threads=8, seed=1),
            lambda: BarnesHutWorkload(n_bodies=256, rounds=2, n_threads=8, seed=1),
            lambda: WaterSpatialWorkload(n_molecules=128, rounds=2, n_threads=8, seed=1),
        ],
        ids=["sor", "barnes_hut", "water_spatial"],
    )
    def test_runs_clean_with_everything_enabled(self, factory):
        from repro.core.profiler import ProfilerSuite

        wl = factory()
        djvm = E.build_djvm(wl, 8, costs=FAST)
        suite = ProfilerSuite(
            djvm, correlation=True, stack=True, footprint=True, send_oals=True
        )
        suite.set_rate_all(4)
        res = djvm.run(wl.programs())
        assert res.execution_time_ms > 0
        tcm = suite.tcm()
        assert tcm.sum() > 0
        assert res.total_cpu.profiling_ns > 0
