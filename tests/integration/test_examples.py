"""Smoke tests: every shipped example must run to completion.

Examples are the documentation users execute first; a broken one is a
broken README.  Each test imports the script as a module and calls its
``main()`` with stdout captured."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


def load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    mod = load(path)
    assert hasattr(mod, "main"), f"{path.name} must expose main()"
    mod.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{path.name} produced suspiciously little output"


def test_all_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "thread_placement",
        "adaptive_profiling",
        "migration_cost_model",
        "home_migration",
        "offline_analysis",
    } <= names
