"""Failure-mode tests: the simulator must fail loudly and precisely, not
corrupt state or hang, when components misbehave."""

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.migration import MigrationPlan
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


def make(n_nodes=2, n_threads=2):
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    cls = simple_class(djvm)
    obj = djvm.allocate(cls, 0)
    for i in range(n_threads):
        djvm.spawn_thread(i % n_nodes)
    return djvm, obj


class TestHookFailures:
    def test_hook_exception_propagates(self):
        """A crashing profiler hook fails the run immediately (fail-fast:
        silently swallowed profiling bugs would corrupt experiments)."""
        djvm, obj = make(n_threads=1)

        class Broken:
            def on_interval_open(self, thread):
                pass

            def on_access(self, thread, obj, **kw):
                raise RuntimeError("profiler bug")

            def on_interval_close(self, thread, interval, sync_dst):
                pass

        djvm.add_hook(Broken())
        with pytest.raises(RuntimeError, match="profiler bug"):
            djvm.run({0: wrap_main([P.read(obj.obj_id)])})

    def test_timer_exception_propagates(self):
        djvm, obj = make(n_threads=1)

        class BrokenTimer:
            def maybe_fire(self, thread):
                raise ValueError("timer bug")

        djvm.add_timer(BrokenTimer())
        with pytest.raises(ValueError, match="timer bug"):
            djvm.run({0: wrap_main([P.compute(1)])})


class TestProgramFailures:
    def test_access_to_unknown_object(self):
        djvm, obj = make(n_threads=1)
        with pytest.raises(IndexError):
            djvm.run({0: wrap_main([P.read(9999)])})

    def test_ret_on_empty_stack(self):
        # The static IR gate (IR003) now rejects this before the
        # interpreter's own IndexError would fire.
        from repro.checks.staticflow import IRVerificationError

        djvm, obj = make(n_threads=1)
        with pytest.raises((IndexError, IRVerificationError)):
            djvm.run({0: [P.ret()]})

    def test_generator_program_exception_surfaces(self):
        djvm, obj = make(n_threads=1)

        def program():
            yield P.call("main", 2)
            raise OSError("trace generation failed")

        with pytest.raises(OSError, match="trace generation"):
            djvm.run({0: program()})


class TestMigrationFailures:
    def test_plan_to_invalid_node_fails_at_fire_time(self):
        djvm, obj = make()
        djvm.migration.schedule(MigrationPlan(thread_id=0, target_node=99, at_pc=1))
        with pytest.raises(ValueError, match="out of range"):
            djvm.run(
                {
                    0: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
                    1: wrap_main([P.barrier(0)]),
                }
            )

    def test_prefetch_provider_exception_surfaces(self):
        djvm, obj = make()

        def provider(thread):
            raise KeyError("resolution state missing")

        djvm.migration.schedule(
            MigrationPlan(thread_id=0, target_node=1, at_pc=1, prefetch_provider=provider)
        )
        with pytest.raises(KeyError):
            djvm.run(
                {
                    0: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
                    1: wrap_main([P.barrier(0)]),
                }
            )


class TestRunReuse:
    def test_two_sequential_runs_on_one_djvm_rejected_or_clean(self):
        """Running a second program set on spent threads must not silently
        produce garbage: threads are DONE, so re-running raises."""
        djvm, obj = make(n_threads=1)
        djvm.run({0: wrap_main([P.read(obj.obj_id)])})
        with pytest.raises(Exception):
            djvm.run({0: wrap_main([P.read(obj.obj_id)])})
