"""Integration: the full sticky-set pipeline — stack sampling, footprint
estimation, resolution, and prefetching migration — reduces the indirect
migration cost on a real workload."""

import pytest

from repro.analysis import experiments as E
from repro.core.profiler import ProfilerSuite
from repro.runtime.migration import MigrationPlan
from repro.workloads import BarnesHutWorkload


def run_with_migration(prefetch: bool, at_pc: int = 5200):
    """Run BH, migrating thread 0 mid-force-phase; optionally prefetching
    the resolved sticky set.  Returns (djvm, run result, resolution)."""
    wl = BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=8, seed=11)
    djvm = E.build_djvm(wl, 8)
    suite = ProfilerSuite(djvm, correlation=False, stack=True, footprint=True)
    suite.set_rate_all(4)
    captured = {}

    def provider(thread):
        stats = suite.resolve_sticky_set(thread, charge_cost=True)
        captured["stats"] = stats
        return stats.selected if prefetch else []

    djvm.migration.schedule(
        MigrationPlan(thread_id=0, target_node=7, at_pc=at_pc, prefetch_provider=provider)
    )
    result = djvm.run(wl.programs())
    return djvm, result, captured.get("stats")


class TestPrefetchEconomics:
    def test_prefetch_cuts_post_migration_faults(self):
        djvm_no, res_no, _ = run_with_migration(prefetch=False)
        djvm_yes, res_yes, stats = run_with_migration(prefetch=True)
        assert stats is not None and stats.selected
        assert res_yes.counters["faults"] < res_no.counters["faults"]
        # A sizeable cut: the sticky set covers a good share of re-fetches.
        saved = res_no.counters["faults"] - res_yes.counters["faults"]
        assert saved > 0.3 * len(stats.selected)

    def test_prefetch_improves_migrated_thread_time(self):
        _, res_no, _ = run_with_migration(prefetch=False)
        _, res_yes, _ = run_with_migration(prefetch=True)
        assert res_yes.thread_finish_ms[0] < res_no.thread_finish_ms[0]

    def test_resolution_cost_charged(self):
        djvm, res, stats = run_with_migration(prefetch=True)
        assert stats.cost_ns > 0
        assert res.thread_cpu[0].resolution_ns == stats.cost_ns


class TestResolutionQuality:
    def test_resolved_set_overlaps_ground_truth(self):
        """Precision against the true sticky set (objects accessed both
        before and after the migration instant within the interval)."""
        wl = BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=8, seed=11)
        djvm = E.build_djvm(wl, 8)
        djvm.hlrc.keep_interval_history = True
        suite = ProfilerSuite(djvm, correlation=False, stack=True, footprint=True)
        suite.set_rate_all(4)
        captured = {}

        def provider(thread):
            stats = suite.resolve_sticky_set(thread, charge_cost=False)
            captured["stats"] = stats
            return stats.selected

        at_pc = 5200
        djvm.migration.schedule(
            MigrationPlan(thread_id=0, target_node=7, at_pc=at_pc, prefetch_provider=provider)
        )
        djvm.run(wl.programs())

        interval = next(
            iv
            for iv in djvm.hlrc.interval_history[0]
            if iv.start_pc < at_pc <= iv.end_pc
        )
        mid = (interval.start_ns + interval.end_ns) // 2
        truth = {
            oid
            for oid, s in interval.accesses.items()
            if s.first_ns < mid <= s.last_ns
        }
        est = set(captured["stats"].selected)
        assert truth, "ground-truth sticky set should not be empty mid-force-phase"
        precision = len(truth & est) / len(est)
        recall = len(truth & est) / len(truth)
        # Precision is the quality bar: most of what we prefetch must be
        # genuinely sticky.  Recall is intentionally budget-limited — the
        # resolution stops once the footprint estimate is met ("a right
        # amount of prefetching", Section V), so it is bounded by the
        # estimated-to-true footprint ratio rather than approaching 1.
        assert precision > 0.4
        assert recall > 0.1
