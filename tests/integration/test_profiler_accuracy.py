"""Integration: profiler accuracy against known ground truth, and the
profile-to-placement pipeline."""

import numpy as np

from repro.analysis import experiments as E
from repro.core.accuracy import accuracy
from repro.placement.partition import greedy_partition, partition_quality, refine_partition
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload

FAST = CostModel.fast_test()


def factory():
    return GroupSharingWorkload(
        n_threads=16,
        group_size=4,
        objects_per_group=96,
        private_per_thread=40,
        object_size=72,
        rounds=3,
        seed=5,
    )


class TestAccuracyAgainstGroundTruth:
    def test_full_sampling_recovers_structure(self):
        run = E.run_with_correlation(factory, 8, rate="full", costs=FAST)
        wl = run.workload
        tcm = run.suite.tcm()
        truth = wl.true_tcm()
        assert accuracy(tcm / tcm.max(), truth / truth.max(), "abs") > 0.9

    def test_sampling_degrades_gracefully(self):
        """Accuracy vs full sampling decreases monotonically-ish but stays
        high at moderate rates (the Fig. 9 claim on synthetic truth)."""
        batches, gos, n, _ = E.collect_full_batches(factory, 8, costs=FAST)
        full = E.tcm_at_rate(batches, gos, n, "full")
        acc = {
            r: accuracy(E.tcm_at_rate(batches, gos, n, r), full, "abs")
            for r in (16, 4, 1)
        }
        assert acc[16] >= acc[1] - 0.05
        assert acc[16] > 0.9
        assert acc[4] > 0.8

    def test_relative_accuracy_tracks_absolute(self):
        """The adaptive controller's working assumption (Section II.B.2):
        relative accuracy is a usable proxy for absolute accuracy."""
        curves = E.accuracy_curves(factory, 8, rates=(64, 16, 4, 1), costs=FAST)
        for rel, ab in zip(curves.relative_abs, curves.absolute_abs):
            assert abs(rel - ab) < 0.15


class TestPlacementPipeline:
    def test_profile_drives_correct_placement(self):
        """TCM -> partitioner recovers the ground-truth thread groups."""
        run = E.run_with_correlation(factory, 8, rate=4, costs=FAST)
        wl = run.workload
        tcm = run.suite.tcm()
        assignment = refine_partition(tcm, greedy_partition(tcm, 4))
        # Every group of 4 threads must land on one node.
        for g in range(4):
            nodes = {assignment[t] for t in range(g * 4, (g + 1) * 4)}
            assert len(nodes) == 1, f"group {g} split across {nodes}"
        quality = partition_quality(wl.true_tcm(), assignment)
        assert quality["local_fraction"] == 1.0

    def test_sampled_profile_places_as_well_as_full(self):
        """The economic claim: a cheap sampled profile yields the same
        placement quality as the expensive full profile."""
        full = E.run_with_correlation(factory, 8, rate="full", costs=FAST)
        sampled = E.run_with_correlation(factory, 8, rate=2, costs=FAST)
        truth = full.workload.true_tcm()

        def quality(run):
            tcm = run.suite.tcm()
            assignment = refine_partition(tcm, greedy_partition(tcm, 4))
            return partition_quality(truth, assignment)["local_fraction"]

        assert quality(sampled) >= quality(full) - 1e-9
