"""Property-based integration tests: invariants that must hold for *any*
well-formed program, checked over randomized barrier-synchronized
programs via hypothesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiler import ProfilerSuite
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

N_THREADS = 3
N_NODES = 3
N_OBJECTS = 8
N_ROUNDS = 3

#: one round of one thread = a few accesses; op = (kind, obj, repeat).
access_op = st.tuples(
    st.sampled_from(["r", "w"]),
    st.integers(min_value=0, max_value=N_OBJECTS - 1),
    st.integers(min_value=1, max_value=4),
)
thread_round = st.lists(access_op, max_size=6)
program_shape = st.lists(
    st.tuples(*[thread_round for _ in range(N_THREADS)]),
    min_size=1,
    max_size=N_ROUNDS,
)


def build_and_run(shape, *, with_profiler=False, rate=4):
    djvm = DJVM(n_nodes=N_NODES, costs=CostModel.fast_test())
    cls = djvm.define_class("Obj", 64)
    objs = [djvm.allocate(cls, i % N_NODES) for i in range(N_OBJECTS)]
    for n in range(N_THREADS):
        djvm.spawn_thread(n)
    suite = None
    if with_profiler:
        suite = ProfilerSuite(djvm, correlation=True, send_oals=True)
        suite.set_rate_all(rate)
    programs = {}
    for tid in range(N_THREADS):
        ops = [P.call("main", 2, refs=[(0, objs[0].obj_id)])]
        for round_idx, per_thread in enumerate(shape):
            for kind, obj_idx, repeat in per_thread[tid]:
                oid = objs[obj_idx].obj_id
                ops.append(P.read(oid, repeat=repeat) if kind == "r" else P.write(oid, repeat=repeat))
            ops.append(P.barrier(round_idx))
        ops.append(P.ret())
        programs[tid] = ops
    result = djvm.run(programs)
    return djvm, result, suite


class TestProtocolConservation:
    @given(program_shape)
    @settings(max_examples=30, deadline=None)
    def test_faults_equal_fetch_messages(self, shape):
        djvm, result, _ = build_and_run(shape)
        fetches = djvm.cluster.network.stats.count_by_kind.get(
            MessageKind.OBJECT_FETCH_DATA, 0
        )
        assert result.counters["faults"] == fetches

    @given(program_shape)
    @settings(max_examples=30, deadline=None)
    def test_diffs_equal_diff_messages(self, shape):
        djvm, result, _ = build_and_run(shape)
        diffs = djvm.cluster.network.stats.count_by_kind.get(MessageKind.DIFF, 0)
        assert result.counters["diffs"] == diffs

    @given(program_shape)
    @settings(max_examples=30, deadline=None)
    def test_cached_versions_never_exceed_home(self, shape):
        djvm, result, _ = build_and_run(shape)
        for node_id, heap in djvm.hlrc.heaps.items():
            for obj_id, record in heap.copies.items():
                obj = djvm.gos.get(obj_id)
                if not record.is_home:
                    assert record.fetched_version <= obj.home_version

    @given(program_shape)
    @settings(max_examples=30, deadline=None)
    def test_all_barriers_complete(self, shape):
        djvm, result, _ = build_and_run(shape)
        for barrier in djvm.hlrc.sync.barriers.values():
            assert barrier.waiting == {}
            assert barrier.episodes == 1


class TestDeterminism:
    @given(program_shape)
    @settings(max_examples=15, deadline=None)
    def test_identical_reruns(self, shape):
        _, a, _ = build_and_run(shape)
        _, b, _ = build_and_run(shape)
        assert a.execution_time_ms == b.execution_time_ms
        assert a.counters == b.counters
        assert a.thread_finish_ms == b.thread_finish_ms
        assert a.traffic.total_bytes == b.traffic.total_bytes

    @given(program_shape)
    @settings(max_examples=15, deadline=None)
    def test_profiled_tcm_deterministic(self, shape):
        _, _, s1 = build_and_run(shape, with_profiler=True)
        _, _, s2 = build_and_run(shape, with_profiler=True)
        assert np.allclose(s1.tcm(), s2.tcm())


class TestProfilerInvariants:
    @given(program_shape)
    @settings(max_examples=20, deadline=None)
    def test_sampled_tcm_bounded_by_full(self, shape):
        """Structural invariant: any pair nonzero in a sampled map is
        nonzero in the full map (sampling only filters, never invents
        sharing)."""
        _, _, sampled = build_and_run(shape, with_profiler=True, rate=1)
        _, _, full = build_and_run(shape, with_profiler=True, rate="full")
        sampled_tcm = sampled.tcm()
        full_tcm = full.tcm()
        assert ((sampled_tcm > 0) <= (full_tcm > 0)).all()

    @given(program_shape)
    @settings(max_examples=20, deadline=None)
    def test_profiling_preserves_schedule_independent_protocol_state(self, shape):
        """The observer effect is cost-only for schedule-independent
        quantities: interval structure, diff flushes and write notices
        are fixed by the programs alone.  (Fault/invalidation counts may
        legitimately differ: profiling cost shifts simulated timing,
        which reorders threads between sync points — a different but
        equally legal LRC schedule, exactly as on real hardware.)"""
        djvm_plain, plain, _ = build_and_run(shape, with_profiler=False)
        djvm_prof, prof, _ = build_and_run(shape, with_profiler=True)
        for key in ("diffs", "notices", "intervals"):
            assert plain.counters[key] == prof.counters[key], key

    @given(program_shape)
    @settings(max_examples=20, deadline=None)
    def test_at_most_one_oal_entry_per_object_interval(self, shape):
        djvm, _, suite = build_and_run(shape, with_profiler=True, rate="full")
        # Recollect: every delivered batch has unique object ids.
        assert suite.collector.batches_received >= 0
        # (Uniqueness is structural in the profiler's dict; verify the
        # invariant the cheap way: total logged accesses == sum of batch
        # lengths implies no duplicates slipped through.)
        assert suite.access_profiler.total_logged == suite.collector.entries_received
