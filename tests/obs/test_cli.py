"""python -m repro.obs CLI: summary, export, diff, gate."""

import json

from repro.obs.__main__ import diff_snapshots, main, run_gate


def test_summary_prints_digest(capsys):
    assert main(["summary", "--workload", "sor"]) == 0
    out = capsys.readouterr().out
    assert "hlrc_faults_total" in out
    assert "# spans recorded:" in out
    assert "self-overhead" in out


def test_export_writes_valid_artifacts(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    prom = tmp_path / "metrics.txt"
    snap = tmp_path / "snapshot.json"
    rc = main(
        [
            "export",
            "--workload",
            "sor",
            "--trace",
            str(trace),
            "--prom",
            str(prom),
            "--snapshot",
            str(snap),
        ]
    )
    assert rc == 0
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"]
    assert "# TYPE hlrc_faults_total counter" in prom.read_text()
    snapshot = json.loads(snap.read_text())
    assert list(snapshot) == sorted(snapshot)


def test_diff_identical_runs_exit_zero(tmp_path, capsys):
    for name in ("a", "b"):
        main(
            [
                "export",
                "--workload",
                "sor",
                "--trace",
                str(tmp_path / f"{name}_trace.json"),
                "--snapshot",
                str(tmp_path / f"{name}.json"),
            ]
        )
    capsys.readouterr()
    rc = main(["diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
    assert rc == 0
    assert "identical" in capsys.readouterr().out


def test_diff_detects_drift(tmp_path, capsys):
    (tmp_path / "a.json").write_text(json.dumps({"x": 1, "y": 2}))
    (tmp_path / "b.json").write_text(json.dumps({"x": 1, "y": 3, "z": 4}))
    rc = main(["diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "y: 2 -> 3" in captured.out
    assert "z: None -> 4" in captured.out


def test_diff_missing_snapshot_exits_two(tmp_path, capsys):
    (tmp_path / "a.json").write_text(json.dumps({"x": 1}))
    rc = main(["diff", str(tmp_path / "a.json"), str(tmp_path / "nope.json")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "cannot read snapshot" in captured.err
    assert "nope.json" in captured.err


def test_diff_unreadable_snapshot_exits_two(tmp_path, capsys):
    (tmp_path / "a.json").write_text(json.dumps({"x": 1}))
    (tmp_path / "b.json").write_text("{not json")
    rc = main(["diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "not valid JSON" in captured.err


def test_diff_snapshots_helper():
    assert diff_snapshots({"a": 1}, {"a": 1}) == []
    assert diff_snapshots({"a": 1}, {"a": 2}) == ["a: 1 -> 2"]


def test_gate_passes_at_relaxed_budget(capsys):
    """One cheap gate pass: byte-identity + trace schema are the real
    assertions; the wall budget is relaxed so a loaded CI host cannot
    flake this test (the strict budget runs in `make obs`)."""
    rc = run_gate(max_overhead=10.0, repeats=1, verbose=False)
    assert rc == 0
    assert "obs gate: OK" in capsys.readouterr().out
