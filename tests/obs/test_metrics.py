"""Metrics registry: instruments, label sets, no-op handles, snapshots."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12

    def test_histogram_buckets_cumulative(self):
        h = Histogram(bounds=(10, 100))
        for v in (1, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 556
        assert h.value == 556  # value == sum keeps the handle API uniform
        samples = dict(h.samples())
        assert samples['_bucket{le="10"}'] == 2
        assert samples['_bucket{le="100"}'] == 3
        assert samples["_bucket{le=\"+Inf\"}"] == 4
        assert samples["_sum"] == 556
        assert samples["_count"] == 4


class TestLabels:
    def test_labeled_children_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("requests_total", labels=("kind",))
        fam.labels(kind="read").inc(2)
        fam.labels(kind="write").inc()
        assert reg.value("requests_total", kind="read") == 2
        assert reg.value("requests_total", kind="write") == 1

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("requests_total", labels=("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels(flavor="read")

    def test_unlabeled_family_proxies_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("faults_total")
        c.inc(7)
        assert c.value == 7
        assert reg.value("faults_total") == 7

    def test_samples_sorted_by_label_values(self):
        reg = MetricsRegistry()
        fam = reg.gauge("bytes", labels=("kind",))
        fam.labels(kind="zz").set(1)
        fam.labels(kind="aa").set(2)
        names = [name for name, _ in fam.samples()]
        assert names == ['bytes{kind="aa"}', 'bytes{kind="zz"}']


class TestRegistry:
    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="re-registered"):
            reg.gauge("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ValueError, match="re-registered"):
            reg.counter("x", labels=("b",))

    def test_value_of_absent_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_snapshot_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("zeta").inc(3)
            reg.gauge("alpha").set(1)
            fam = reg.counter("mid", labels=("k",))
            fam.labels(k="b").inc()
            fam.labels(k="a").inc(2)
            return reg.snapshot()

        snap = build()
        assert list(snap) == sorted(snap)
        assert snap == build()  # identical construction -> identical dict

    def test_collectors_run_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"n": 5}
        reg.register_collector(lambda r: r.gauge("live").set(state["n"]))
        assert reg.snapshot()["live"] == 5
        state["n"] = 9
        assert reg.snapshot()["live"] == 9

    def test_snapshot_accrues_self_ns_outside_samples(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        snap = reg.snapshot()
        assert reg.self_ns > 0
        assert "self_ns" not in snap  # host time never enters the sample space


class TestDisabledRegistry:
    def test_disabled_returns_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert isinstance(reg.counter("x"), NullCounter)
        assert isinstance(reg.gauge("y"), NullGauge)
        assert isinstance(reg.histogram("z"), NullHistogram)
        assert reg.counter("a") is reg.counter("b")  # shared singleton

    def test_null_handles_absorb_all_operations(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc()
        c.labels(kind="anything").inc(5)
        assert c.value == 0
        g = reg.gauge("y")
        g.set(10)
        g.dec()
        assert g.value == 0
        h = reg.histogram("z")
        h.observe(123)
        assert h.sum == 0 and h.count == 0

    def test_disabled_snapshot_empty_and_collectors_dropped(self):
        reg = MetricsRegistry(enabled=False)
        reg.register_collector(lambda r: (_ for _ in ()).throw(AssertionError))
        assert reg.snapshot() == {}

    def test_shared_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.snapshot() == {}
