"""Object-centric inefficiency profiler: lifetime folding, pattern
detectors, the ranked report, and the placement feed."""

import json
from types import SimpleNamespace

import pytest

from repro.obs.__main__ import OBJPROF_GATE_NODES, OBJPROF_GATE_RATE, _run, build_objprof_report
from repro.obs.objprof import ObjectProfiler
from repro.obs.patterns import PATTERNS, detect_object_patterns
from repro.placement.candidates import candidates_from_objprof, merge_candidates
from repro.sim.costs import CostModel
from repro.sim.network import Network


def _thread(node_id: int, thread_id: int):
    return SimpleNamespace(node_id=node_id, thread_id=thread_id)


def _interval(accesses: dict):
    """obj_id -> (reads, writes) into the interval-summary shape."""
    return SimpleNamespace(
        accesses={
            obj_id: SimpleNamespace(reads=r, writes=w) for obj_id, (r, w) in accesses.items()
        }
    )


def _obj(obj_id=7, size=128, home=0, site="s"):
    return SimpleNamespace(
        obj_id=obj_id,
        size_bytes=size,
        home_node=home,
        site=site,
        jclass=SimpleNamespace(name="C"),
    )


class TestLifetimeFolding:
    def test_fault_refault_and_per_node_counts(self):
        prof = ObjectProfiler()
        obj = _obj()
        prof.on_fault(_thread(1, 0), obj, False)
        prof.on_fault(_thread(2, 1), obj, False)
        prof.on_fault(_thread(1, 0), obj, True)
        rec = prof.records[7]
        assert rec.faults == 3
        assert rec.refaults == 1
        assert rec.faults_by_node == {1: 2, 2: 1}

    def test_dead_transfer_is_epoch_closed_with_zero_reads(self):
        prof = ObjectProfiler()
        prof.on_fault(_thread(1, 0), _obj(), False)  # copy in, never read
        prof.on_invalidations(1, [7])
        assert prof.records[7].dead_transfers == 1
        assert prof.records[7].invalidations == 1

    def test_read_before_invalidation_is_not_dead(self):
        prof = ObjectProfiler()
        prof.on_fault(_thread(1, 0), _obj(), False)
        prof.on_interval_close(_thread(1, 0), _interval({7: (3, 0)}))
        prof.on_invalidations(1, [7])
        assert prof.records[7].dead_transfers == 0
        assert prof.records[7].reads_by_node == {1: 3}

    def test_invalidation_on_other_node_keeps_epoch_open(self):
        prof = ObjectProfiler()
        prof.on_fault(_thread(1, 0), _obj(), False)
        prof.on_invalidations(2, [7])  # a different node's copy dies
        assert prof.records[7].dead_transfers == 0

    def test_writer_alternations_count_node_changes(self):
        prof = ObjectProfiler()
        for node, tid in ((0, 0), (1, 1), (0, 0), (0, 0), (2, 2)):
            prof.on_interval_close(_thread(node, tid), _interval({7: (0, 1)}))
        rec = prof.records[7]
        assert rec.writer_nodes == {0, 1, 2}
        assert rec.writer_threads == {0, 1, 2}
        # 0 -> 1 -> 0 -> (0 stays) -> 2
        assert rec.writer_alternations == 3

    def test_phases_span_barrier_releases(self):
        prof = ObjectProfiler()
        prof.on_interval_close(_thread(0, 0), _interval({7: (1, 0)}))
        prof.on_barrier_release(1_000)
        prof.on_barrier_release(2_000)
        prof.on_interval_close(_thread(0, 0), _interval({7: (1, 0)}))
        rec = prof.records[7]
        assert (rec.first_phase, rec.last_phase) == (0, 2)
        assert prof.phase == 2
        assert prof.phase_release_ns == [1_000, 2_000]

    def test_oal_batch_accumulates_ht_mass(self):
        prof = ObjectProfiler()
        entries = [
            SimpleNamespace(obj_id=7, scaled_bytes=512),
            SimpleNamespace(obj_id=7, scaled_bytes=256),
        ]
        prof.on_oal_batch(0, entries)
        assert prof.records[7].ht_bytes == 768


class TestPatternDetectors:
    costs = CostModel()
    network = Network()

    def _detect(self, prof, obj):
        return detect_object_patterns(prof.records[obj.obj_id], obj, self.costs, self.network)

    def test_ping_pong_fires_on_one_cross_node_handoff(self):
        prof = ObjectProfiler()
        obj = _obj()
        prof.on_interval_close(_thread(0, 0), _interval({7: (0, 1)}))
        prof.on_interval_close(_thread(1, 1), _interval({7: (0, 1)}))
        found = self._detect(prof, obj)
        assert [f.pattern for f in found] == ["ping-pong"]
        assert found[0].wasted_ns > 0

    def test_single_node_writers_never_ping_pong(self):
        prof = ObjectProfiler()
        obj = _obj()
        for _ in range(4):
            prof.on_interval_close(_thread(0, 0), _interval({7: (0, 1)}))
        assert self._detect(prof, obj) == []

    def test_dead_transfer_priced_per_dead_copy(self):
        prof = ObjectProfiler()
        obj = _obj()
        for node in (1, 2):
            prof.on_fault(_thread(node, node), obj, False)
            prof.on_invalidations(node, [7])
        found = [f for f in self._detect(prof, obj) if f.pattern == "dead-transfer"]
        assert len(found) == 1
        assert found[0].wasted_ns > 0
        assert "2" in found[0].detail

    def test_over_invalidated_needs_read_mostly_and_refaults(self):
        prof = ObjectProfiler()
        obj = _obj()
        prof.on_fault(_thread(1, 1), obj, False)
        prof.on_interval_close(_thread(1, 1), _interval({7: (10, 0)}))
        prof.on_invalidations(1, [7])
        prof.on_fault(_thread(1, 1), obj, True)  # refault
        prof.on_interval_close(_thread(1, 1), _interval({7: (10, 1)}))
        prof.on_invalidations(1, [7])
        patterns = [f.pattern for f in self._detect(prof, obj)]
        assert "over-invalidated" in patterns

    def test_contended_home_names_dominant_remote_node(self):
        prof = ObjectProfiler()
        obj = _obj(home=0)
        prof.on_fault(_thread(2, 2), obj, False)
        prof.on_fault(_thread(2, 2), obj, True)
        prof.on_interval_close(_thread(0, 0), _interval({7: (1, 0)}))
        prof.on_interval_close(_thread(1, 1), _interval({7: (2, 0)}))
        prof.on_interval_close(_thread(2, 2), _interval({7: (9, 0)}))
        found = [f for f in self._detect(prof, obj) if f.pattern == "contended-home"]
        assert len(found) == 1
        assert found[0].target_node == 2

    def test_detectors_only_emit_known_patterns(self):
        prof = ObjectProfiler()
        obj = _obj()
        prof.on_fault(_thread(1, 1), obj, False)
        for f in self._detect(prof, obj):
            assert f.pattern in PATTERNS


@pytest.fixture(scope="module")
def water_spatial_runs():
    """One base run + one profiled run/report of check-scale Water-Spatial."""
    base = _run("water-spatial", OBJPROF_GATE_NODES, OBJPROF_GATE_RATE, telemetry=None)
    profiled, report = build_objprof_report(
        "water-spatial", OBJPROF_GATE_NODES, OBJPROF_GATE_RATE
    )
    return base, profiled, report


class TestWaterSpatialReport:
    def test_profiler_on_run_is_byte_identical(self, water_spatial_runs):
        base, profiled, _report = water_spatial_runs
        assert base.result.execution_time_ms == profiled.result.execution_time_ms
        assert base.result.thread_finish_ms == profiled.result.thread_finish_ms
        assert base.result.counters == profiled.result.counters

    def test_ranks_three_distinct_patterns_with_origins(self, water_spatial_runs):
        _base, _profiled, report = water_spatial_runs
        assert len(report.patterns_found) >= 3
        for finding in report.findings:
            assert ":" in finding.origin
            assert finding.origin.startswith("repro/workloads/water_spatial.py")
        # ranked by descending wasted ns
        wasted = [f.wasted_ns for f in report.findings]
        assert wasted == sorted(wasted, reverse=True)

    def test_report_json_is_deterministic(self, water_spatial_runs):
        _base, _profiled, report = water_spatial_runs
        _again, report2 = build_objprof_report(
            "water-spatial", OBJPROF_GATE_NODES, OBJPROF_GATE_RATE
        )
        assert report.to_json() == report2.to_json()

    def test_render_mentions_sites_and_patterns(self, water_spatial_runs):
        _base, _profiled, report = water_spatial_runs
        text = report.render(top=5)
        assert "object-centric inefficiency report" in text
        assert "ws.coords" in text
        assert "water_spatial.py:" in text

    def test_placement_feed_consumes_report_and_json(self, water_spatial_runs):
        _base, _profiled, report = water_spatial_runs
        from_obj = candidates_from_objprof(report)
        from_json = candidates_from_objprof(json.loads(json.dumps(report.to_json())))
        assert from_obj == from_json
        assert from_obj, "expected at least one dynamic candidate"
        kinds = {c.kind for c in from_obj}
        assert "home-migration" in kinds  # contended-home maps to a target node
        # measured candidates lead any merged feed and dedupe statics.
        merged = merge_candidates(from_obj[:1], from_obj)
        assert merged == from_obj
