"""Self-overhead accounting arithmetic and the measure() harness."""

from types import SimpleNamespace

from repro.obs import Telemetry
from repro.obs.overhead import (
    OverheadReport,
    measure,
    overhead_frac,
    profiling_attribution,
)


class TestArithmetic:
    def test_overhead_frac(self):
        assert overhead_frac(100, 110) == 0.1
        assert overhead_frac(100, 100) == 0.0
        assert overhead_frac(0, 50) == 0.0  # degenerate base

    def test_profiling_attribution_splits_base_from_profiling(self):
        cpu = SimpleNamespace(
            compute_ns=100,
            access_ns=20,
            protocol_ns=30,
            network_wait_ns=40,
            migration_ns=10,
            profiling_ns=25,
            oal_logging_ns=10,
            oal_packing_ns=5,
            resampling_ns=4,
            stack_sampling_ns=3,
            footprinting_ns=2,
            resolution_ns=1,
            total_ns=225,
        )
        att = profiling_attribution(cpu)
        assert att["base_ns"] == 200
        assert att["profiling_ns"] == 25
        assert att["base_ns"] + att["profiling_ns"] == att["total_ns"]


class TestOverheadReport:
    def test_fractions(self):
        report = OverheadReport(
            base_wall_s=1.0, telemetry_wall_s=1.1, observer_wall_ns=55_000_000
        )
        assert abs(report.overhead_frac - 0.1) < 1e-9
        assert abs(report.observer_frac - 0.05) < 1e-9

    def test_degenerate_zero_walls(self):
        report = OverheadReport(base_wall_s=0.0, telemetry_wall_s=0.0)
        assert report.overhead_frac == 0.0
        assert report.observer_frac == 0.0

    def test_render_mentions_overhead(self):
        text = OverheadReport(base_wall_s=0.1, telemetry_wall_s=0.11).render()
        assert "overhead" in text and "%" in text


class TestMeasure:
    def test_best_of_and_telemetry_capture(self):
        calls = {"base": 0, "telem": 0}

        def run_base():
            calls["base"] += 1

        telemetry = Telemetry()
        telemetry.registry.counter("x").inc()

        def run_telemetry():
            calls["telem"] += 1
            return telemetry

        report = measure(run_base, run_telemetry, repeats=3)
        assert calls == {"base": 3, "telem": 3}
        assert report.base_wall_s > 0
        assert report.telemetry_wall_s > 0
        assert report.samples == 1  # the one counter sample
        assert report.spans == 0  # tracing off

    def test_telemetry_off_baseline(self):
        """run_telemetry returning None (telemetry genuinely off) must
        degrade to an all-zero observation, not crash on the missing
        context."""
        report = measure(lambda: None, lambda: None, repeats=2)
        assert report.observer_wall_ns == 0
        assert report.spans == 0
        assert report.samples == 0
        # walls are still measured (calling a no-op costs > 0 ns).
        assert report.base_wall_s > 0 and report.telemetry_wall_s > 0

    def test_self_ns_accounting_reaches_report(self):
        """observer_wall_ns must carry the context's self-reported host
        ns (tracer + registry), and tracing-on runs must report spans."""
        telemetry = Telemetry(tracing=True)
        telemetry.tracer.add("fault", "dsm", 0, "thread0", 0, 10)
        telemetry.registry.counter("x").inc()
        telemetry.snapshot()  # registry self-times its snapshots
        assert telemetry.tracer.self_ns > 0
        assert telemetry.self_wall_ns == telemetry.tracer.self_ns + telemetry.registry.self_ns
        report = measure(lambda: None, lambda: telemetry, repeats=1)
        assert report.observer_wall_ns >= telemetry.tracer.self_ns
        assert report.spans == 1

    def test_zero_duration_report_is_all_zero_fractions(self):
        """A degenerate zero-wall report (e.g. mocked timers) must keep
        both fractions at exactly 0.0 rather than dividing by zero."""
        report = OverheadReport(
            base_wall_s=0.0, telemetry_wall_s=0.0, observer_wall_ns=1_000
        )
        assert report.overhead_frac == 0.0
        assert report.observer_frac == 0.0
        assert "overhead" in report.render()
