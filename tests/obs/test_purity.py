"""Observer purity: telemetry must never perturb the simulation.

Mirrors the sanitizer/race-detector byte-identity gates: the TCM
checksum, simulated execution time, per-thread finish times and
protocol counters must be bit-identical with telemetry off,
metrics-only, and metrics+tracing — on all three tracked workloads.
"""

import hashlib

import pytest

from repro.analysis.experiments import run_with_correlation
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.sim.events import EventLoop
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.sor import SORWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload

WORKLOADS = {
    "sor": lambda: SORWorkload(n=128, rounds=2, n_threads=4, seed=11),
    "barnes-hut": lambda: BarnesHutWorkload(n_bodies=96, rounds=2, n_threads=4, seed=11),
    "water-spatial": lambda: WaterSpatialWorkload(n_molecules=32, rounds=2, n_threads=4, seed=11),
}

MODES = {"off": None, "metrics": "metrics", "full": "full"}


def _run(workload_key: str, telemetry):
    return run_with_correlation(
        WORKLOADS[workload_key], n_nodes=4, rate=4, send_oals=True, telemetry=telemetry
    )


def _fingerprint(run) -> tuple:
    return (
        hashlib.sha256(run.suite.tcm().tobytes()).hexdigest(),
        run.result.execution_time_ms,
        tuple(sorted(run.result.thread_finish_ms.items())),
        tuple(sorted(run.djvm.hlrc.counters.items())),
    )


@pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", ["metrics", "full"])
def test_telemetry_does_not_perturb_results(workload_key, mode):
    off = _fingerprint(_run(workload_key, None))
    on = _fingerprint(_run(workload_key, MODES[mode]))
    assert on == off


def test_snapshots_identical_across_identical_runs():
    a = _run("sor", "full").djvm.telemetry.snapshot()
    b = _run("sor", "full").djvm.telemetry.snapshot()
    assert a == b
    assert list(a) == sorted(a)  # deterministic ordering contract


def test_metrics_agree_with_legacy_counters():
    run = _run("sor", "metrics")
    reg = run.djvm.telemetry.registry
    counters = run.djvm.hlrc.counters
    assert reg.value("hlrc_faults_total") == counters["faults"]
    assert reg.value("hlrc_diffs_total") == counters["diffs"]
    assert reg.value("hlrc_intervals_total") == counters["intervals"]
    snap = run.djvm.telemetry.snapshot()
    assert snap["network_gos_bytes"] == run.djvm.cluster.network.stats.gos_bytes
    assert snap["profiler_oal_logged"] == run.suite.access_profiler.total_logged


# ---------------------------------------------------------------------------
# trace structure on a real run (the ISSUE acceptance case: 2-node SOR)
# ---------------------------------------------------------------------------


def _sor_2node_traced():
    return run_with_correlation(
        lambda: SORWorkload(n=128, rounds=2, n_threads=4, seed=11),
        n_nodes=2,
        rate=4,
        send_oals=True,
        telemetry="full",
    )


def test_sor_trace_schema_valid():
    run = _sor_2node_traced()
    tracer = run.djvm.telemetry.tracer
    assert tracer.spans  # really traced
    assert tracer.open_spans() == []  # every interval closed
    doc = chrome_trace(tracer)
    assert validate_chrome_trace(doc) == []


def _assert_nested(tracer, required):
    intervals = tracer.by_name("interval")
    assert intervals
    for name in required:
        assert tracer.by_name(name), f"expected {name} spans from this run"
    for name in ("fault", "diff", "oal_flush"):
        for child in tracer.by_name(name):
            assert any(parent.contains(child) for parent in intervals), (
                f"{name} span at [{child.begin_ns}, {child.end_ns}] on track "
                f"{child.track} not contained in any interval"
            )


def test_sor_trace_spans_nest_correctly():
    """Every fault/oal_flush span lies inside an interval span on the
    same thread track (SOR's home-placed writes produce no diffs)."""
    _assert_nested(_sor_2node_traced().djvm.telemetry.tracer, ("fault", "oal_flush"))


def test_water_spatial_diff_spans_nest_correctly():
    tracer = _run("water-spatial", "full").djvm.telemetry.tracer
    _assert_nested(tracer, ("fault", "diff", "oal_flush"))


def test_sor_trace_has_barrier_and_tcm_spans():
    run = _sor_2node_traced()
    run.suite.collector.tcm()  # fold pending batches -> tcm_window spans
    tracer = run.djvm.telemetry.tracer
    assert tracer.by_name("barrier_wait")
    windows = tracer.by_name("tcm_window")
    assert windows
    # daemon windows are serialized: no overlap on the daemon track
    ordered = sorted(windows, key=lambda s: s.begin_ns)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end_ns <= b.begin_ns


# ---------------------------------------------------------------------------
# event-kernel aux channel: bounded ring + dropped accounting
# ---------------------------------------------------------------------------


class TestAuxRing:
    def _loop(self, capacity):
        loop = EventLoop(aux_capacity=capacity)
        loop.keep_aux = True
        return loop

    def test_bounded_ring_evicts_oldest_and_counts(self):
        loop = self._loop(2)
        for i in range(5):
            loop.record_aux((i,))
        assert loop.aux_trace == [(3,), (4,)]
        assert loop.aux_dropped == 3
        assert loop.aux_capacity == 2

    def test_unbounded_by_default(self):
        loop = self._loop(None)
        for i in range(100):
            loop.record_aux((i,))
        assert len(loop.aux_trace) == 100
        assert loop.aux_dropped == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="aux_capacity"):
            EventLoop(aux_capacity=-1)

    def test_djvm_threads_capacity_to_kernel_and_telemetry(self):
        from repro.runtime.djvm import DJVM

        workload = SORWorkload(n=64, rounds=1, n_threads=2, seed=3)
        djvm = DJVM(n_nodes=2, telemetry=True, aux_capacity=7)
        workload.build(djvm)
        djvm.run(workload.programs())
        kernel = djvm._interpreter.kernel
        assert kernel.aux_capacity == 7
        # overflow the ring post-run; telemetry surfaces the drop count
        kernel.keep_aux = True
        for i in range(10):
            kernel.record_aux((i,))
        snap = djvm.telemetry.snapshot()
        assert snap["event_kernel_aux_dropped"] == kernel.aux_dropped == 3
