"""Span tracer and Chrome-trace exporter unit tests (synthetic spans;
the integration-grade tests against a real run live in test_purity.py)."""

from types import SimpleNamespace

from repro.obs.export import chrome_trace, prometheus_text, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TCM_TRACK, SpanTracer


def _thread(thread_id=0, node_id=0):
    return SimpleNamespace(thread_id=thread_id, node_id=node_id)


class TestSpanTracer:
    def test_add_records_in_order_with_counts(self):
        tr = SpanTracer()
        tr.add("a", "cat", 0, 0, 10, 20)
        tr.add("b", "cat", 0, 0, 20, 30)
        tr.add("a", "cat", 1, 1, 5, 7)
        assert [s.name for s in tr.spans] == ["a", "b", "a"]
        assert tr.counts == {"a": 2, "b": 1}
        assert [s.seq for s in tr.spans] == [0, 1, 2]

    def test_interval_open_close_pairs(self):
        tr = SpanTracer()
        t = _thread(thread_id=3, node_id=1)
        tr.interval_open(t, 100)
        assert tr.open_spans() and not tr.spans
        tr.interval_close(t, SimpleNamespace(interval_id=42), 250)
        assert not tr.open_spans()
        (span,) = tr.spans
        assert (span.begin_ns, span.end_ns) == (100, 250)
        assert span.args == {"interval_id": 42}
        assert span.duration_ns == 150

    def test_interval_close_without_open_is_ignored(self):
        tr = SpanTracer()
        tr.interval_close(_thread(), SimpleNamespace(interval_id=0), 10)
        assert tr.spans == []

    def test_barrier_wait_span(self):
        tr = SpanTracer()
        t = _thread(thread_id=2, node_id=1)
        tr.barrier_arrive(t, 7, 1000)
        tr.barrier_resume(t, 7, 1800)
        (span,) = tr.by_name("barrier_wait")
        assert (span.begin_ns, span.end_ns) == (1000, 1800)
        assert span.cat == "sync"

    def test_barrier_resume_without_arrive_is_ignored(self):
        tr = SpanTracer()
        tr.barrier_resume(_thread(), 7, 1800)
        assert tr.spans == []

    def test_containment_same_track_only(self):
        tr = SpanTracer()
        outer = tr.add("interval", "interval", 0, 0, 0, 100)
        inner = tr.add("fault", "dsm", 0, 0, 10, 30)
        other = tr.add("fault", "dsm", 0, 1, 10, 30)
        assert outer.contains(inner)
        assert not outer.contains(other)  # different track

    def test_tcm_windows_serialized_on_daemon_track(self):
        """Two windows delivered while the first computes must queue, not
        overlap — the daemon is sequential."""
        tr = SpanTracer()
        tr.tcm_window(0, 100, 50, entries=10, window_index=0)
        tr.tcm_window(0, 120, 50, entries=10, window_index=1)  # arrives mid-compute
        a, b = tr.by_name("tcm_window")
        assert a.track == TCM_TRACK and b.track == TCM_TRACK
        assert (a.begin_ns, a.end_ns) == (100, 150)
        assert (b.begin_ns, b.end_ns) == (150, 200)  # queued behind a

    def test_emitters_accrue_self_ns(self):
        tr = SpanTracer()
        for i in range(100):
            tr.add("x", "c", 0, 0, i, i + 1)
        assert tr.self_ns > 0


class TestChromeTraceExport:
    def _tracer(self):
        tr = SpanTracer()
        # node 0 / thread 0: interval containing a fault and a diff
        tr.add("interval", "interval", 0, 0, 0, 1000)
        tr.add("fault", "dsm", 0, 0, 100, 300)
        tr.add("diff", "dsm", 0, 0, 400, 500)
        # node 1 / thread 1: bare interval
        tr.add("interval", "interval", 1, 1, 0, 800)
        # daemon track
        tr.tcm_window(0, 600, 100, entries=4, window_index=0)
        return tr

    def test_document_is_schema_valid(self):
        doc = chrome_trace(self._tracer())
        assert validate_chrome_trace(doc) == []

    def test_metadata_rows_name_processes_and_tracks(self):
        doc = chrome_trace(self._tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "node0") in names
        assert ("thread_name", "thread0") in names
        assert ("thread_name", "tcm-daemon") in names

    def test_nesting_emitted_as_b_e_pairs(self):
        doc = chrome_trace(self._tracer())
        track0 = [
            (e["ph"], e["name"])
            for e in doc["traceEvents"]
            if e["ph"] in "BE" and e["pid"] == 0 and e["tid"] == 0
        ]
        assert track0 == [
            ("B", "interval"),
            ("B", "fault"),
            ("E", "fault"),
            ("B", "diff"),
            ("E", "diff"),
            ("E", "interval"),
        ]

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace(self._tracer())
        fault_b = next(
            e for e in doc["traceEvents"] if e["ph"] == "B" and e["name"] == "fault"
        )
        assert fault_b["ts"] == 0.1  # 100 ns -> 0.1 us

    def test_daemon_track_gets_nonnegative_tid(self):
        doc = chrome_trace(self._tracer())
        tids = {e["tid"] for e in doc["traceEvents"] if e.get("name") == "tcm_window"}
        assert all(t >= 0 for t in tids)

    def test_unclosed_spans_skipped(self):
        tr = SpanTracer()
        tr.add("broken", "c", 0, 0, 100, -1)
        doc = chrome_trace(tr)
        assert doc["traceEvents"] == []


class TestValidator:
    def test_rejects_bad_envelope(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_unbalanced_e(self):
        doc = {"traceEvents": [
            {"ph": "E", "name": "x", "pid": 0, "tid": 0, "ts": 1.0},
        ]}
        assert any("no open B" in p for p in validate_chrome_trace(doc))

    def test_rejects_mismatched_e_name(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 1.0},
            {"ph": "E", "name": "b", "pid": 0, "tid": 0, "ts": 2.0},
        ]}
        assert any("does not match" in p for p in validate_chrome_trace(doc))

    def test_rejects_unclosed_b(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 1.0},
        ]}
        assert any("unclosed" in p for p in validate_chrome_trace(doc))

    def test_rejects_backwards_ts(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 5.0},
            {"ph": "E", "name": "a", "pid": 0, "tid": 0, "ts": 1.0},
        ]}
        assert validate_chrome_trace(doc) != []


class TestPrometheusText:
    def test_renders_help_type_and_samples(self):
        reg = MetricsRegistry()
        reg.counter("faults_total", "remote object faults").inc(3)
        reg.gauge("bytes", "traffic", labels=("kind",)).labels(kind="gos").set(9)
        text = prometheus_text(reg)
        assert "# HELP faults_total remote object faults" in text
        assert "# TYPE faults_total counter" in text
        assert "faults_total 3" in text
        assert 'bytes{kind="gos"} 9' in text

    def test_disabled_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry(enabled=False)) == ""
