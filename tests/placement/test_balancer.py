"""Tests for the correlation-aware load balancer."""

import numpy as np
import pytest

from repro.core.costmodel import MigrationCostModel
from repro.placement.balancer import CorrelationAwareBalancer
from repro.sim.costs import CostModel
from repro.sim.network import Network


def balancer(**kw):
    return CorrelationAwareBalancer(
        MigrationCostModel(Network(), CostModel.gideon300()), **kw
    )


def partner_tcm(shared=1e7):
    """Threads 0,1 share heavily but start on different nodes."""
    tcm = np.zeros((4, 4))
    tcm[0, 1] = tcm[1, 0] = shared
    return tcm


class TestPropose:
    def test_profitable_colocations_proposed(self):
        props = balancer(horizon_intervals=50).propose(
            partner_tcm(), {0: 0, 1: 1, 2: 2, 3: 3}, 4
        )
        assert props, "expected at least one proposal"
        moved = {p.thread_id for p in props}
        assert moved & {0, 1}
        best = props[0]
        assert best.profit_ns > 0

    def test_no_proposals_when_sharing_tiny(self):
        props = balancer(horizon_intervals=1).propose(
            partner_tcm(shared=10.0), {0: 0, 1: 1, 2: 2, 3: 3}, 4
        )
        assert props == []

    def test_each_thread_moved_once(self):
        tcm = np.full((4, 4), 1e7)
        np.fill_diagonal(tcm, 0)
        props = balancer(horizon_intervals=50).propose(
            tcm, {t: t for t in range(4)}, 4
        )
        moved = [p.thread_id for p in props]
        assert len(moved) == len(set(moved))

    def test_load_cap_respected(self):
        tcm = np.full((6, 6), 1e8)
        np.fill_diagonal(tcm, 0)
        placement = {t: t % 3 for t in range(6)}
        props = balancer(horizon_intervals=100, max_load_factor=1.5).propose(
            tcm, placement, 3
        )
        # Apply and check loads: cap = 1.5 * 2 = 3.
        load = {n: 0 for n in range(3)}
        for t, n in placement.items():
            load[n] += 1
        for p in props:
            load[p.from_node] -= 1
            load[p.to_node] += 1
        assert max(load.values()) <= 3

    def test_sticky_footprint_raises_cost(self):
        """A thread with a huge sticky set may become unprofitable to move."""
        placement = {0: 0, 1: 1, 2: 2, 3: 3}
        big_fp = {0: {"Node": 5e7}, 1: {"Node": 5e7}}
        cheap = balancer(horizon_intervals=3).propose(partner_tcm(1e6), placement, 4)
        pricey = balancer(horizon_intervals=3).propose(
            partner_tcm(1e6), placement, 4, footprints=big_fp
        )
        assert len(pricey) <= len(cheap)

    def test_max_proposals_cap(self):
        tcm = np.full((6, 6), 1e8)
        np.fill_diagonal(tcm, 0)
        props = balancer(horizon_intervals=100).propose(
            tcm, {t: t % 3 for t in range(6)}, 3, max_proposals=1
        )
        assert len(props) <= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            balancer(horizon_intervals=0)
        with pytest.raises(ValueError):
            balancer(max_load_factor=0.5)
