"""Placement candidates (:mod:`repro.placement.candidates`): the static
and objprof feed shapes, ranking order, the merged work-list, and the
no-sharing edge case."""

from __future__ import annotations

from types import SimpleNamespace

from repro.placement.candidates import (
    PlacementCandidate,
    candidates_from_objprof,
    candidates_from_static,
    merge_candidates,
)


def _obj(site: str, home_node: int, size_bytes: int) -> SimpleNamespace:
    return SimpleNamespace(site=site, home_node=home_node, size_bytes=size_bytes)


def _share(classification: str, writers) -> SimpleNamespace:
    return SimpleNamespace(classification=classification, writers=set(writers))


def _report(objects, sharing, node_of_thread):
    """Assemble the StaticReport shape candidates_from_static reads."""
    return SimpleNamespace(
        ir=SimpleNamespace(objects=objects, node_of_thread=node_of_thread),
        sharing=SimpleNamespace(objects=sharing),
    )


def test_no_sharing_analysis_yields_no_candidates():
    report = SimpleNamespace(sharing=None)
    assert candidates_from_static(report) == []


def test_single_writer_off_home_becomes_home_migration():
    # obj 1: thread 2 (node 1) is the only writer, but homed on node 0.
    report = _report(
        objects={1: _obj("alloc@A", home_node=0, size_bytes=256)},
        sharing={1: _share("single-writer", writers=[2])},
        node_of_thread={2: 1},
    )
    (cand,) = candidates_from_static(report)
    assert cand.kind == "home-migration"
    assert cand.site == "alloc@A"
    assert cand.obj_ids == (1,)
    assert cand.threads == (2,)
    assert cand.target_node == 1
    assert cand.weight == 256
    assert "node 1" in cand.render()


def test_single_writer_already_home_is_not_a_candidate():
    report = _report(
        objects={1: _obj("alloc@A", home_node=1, size_bytes=256)},
        sharing={1: _share("single-writer", writers=[2])},
        node_of_thread={2: 1},
    )
    assert candidates_from_static(report) == []


def test_ping_pong_site_becomes_colocate_threads():
    report = _report(
        objects={
            1: _obj("alloc@B", home_node=0, size_bytes=100),
            2: _obj("alloc@B", home_node=1, size_bytes=50),
        },
        sharing={
            1: _share("ping-pong", writers=[0, 3]),
            2: _share("ping-pong", writers=[3, 5]),
        },
        node_of_thread={0: 0, 3: 1, 5: 2},
    )
    (cand,) = candidates_from_static(report)
    assert cand.kind == "colocate-threads"
    assert cand.obj_ids == (1, 2)
    # union of writers across the site's objects, sorted
    assert cand.threads == (0, 3, 5)
    assert cand.target_node is None
    assert cand.weight == 150


def test_mishomed_objects_aggregate_per_site_and_writer_node():
    """Two mis-homed objects from one site with writers on the same node
    merge into a single candidate; a third with a writer elsewhere
    stays separate."""
    report = _report(
        objects={
            1: _obj("alloc@A", home_node=0, size_bytes=10),
            2: _obj("alloc@A", home_node=2, size_bytes=20),
            3: _obj("alloc@A", home_node=0, size_bytes=40),
        },
        sharing={
            1: _share("single-writer", writers=[4]),
            2: _share("single-writer", writers=[4]),
            3: _share("single-writer", writers=[7]),
        },
        node_of_thread={4: 1, 7: 3},
    )
    cands = candidates_from_static(report)
    assert [(c.target_node, c.obj_ids, c.weight) for c in cands] == [
        (3, (3,), 40),
        (1, (1, 2), 30),
    ]


def test_ranking_by_weight_then_site_then_kind():
    report = _report(
        objects={
            1: _obj("site_z", home_node=0, size_bytes=500),
            2: _obj("site_a", home_node=0, size_bytes=100),
            3: _obj("site_m", home_node=1, size_bytes=100),
        },
        sharing={
            1: _share("single-writer", writers=[2]),
            2: _share("ping-pong", writers=[0, 1]),
            3: _share("single-writer", writers=[5]),
        },
        node_of_thread={0: 0, 1: 1, 2: 1, 5: 0},
    )
    cands = candidates_from_static(report)
    # descending weight; 100-weight tie broken by site name
    assert [(c.weight, c.site) for c in cands] == [
        (500, "site_z"),
        (100, "site_a"),
        (100, "site_m"),
    ]


def test_other_classifications_are_ignored():
    report = _report(
        objects={
            1: _obj("alloc@A", home_node=0, size_bytes=64),
            2: _obj("alloc@A", home_node=0, size_bytes=64),
        },
        sharing={
            1: _share("node-private", writers=[0]),
            2: _share("read-mostly", writers=[1]),
        },
        node_of_thread={0: 1, 1: 1},
    )
    assert candidates_from_static(report) == []


def _finding(pattern, site, wasted_ns, target_node=None, obj_ids=(1,), threads=(0,)):
    return {
        "pattern": pattern,
        "site": site,
        "origin": f"repro/workloads/x.py:{len(site)}",
        "obj_ids": list(obj_ids),
        "threads": list(threads),
        "wasted_ns": wasted_ns,
        "target_node": target_node,
        "detail": "d",
    }


def test_objprof_findings_map_to_candidate_kinds():
    report = {
        "kind": "objprof-report",
        "findings": [
            _finding("contended-home", "a", 100, target_node=2),
            _finding("ping-pong", "b", 300),
            _finding("over-invalidated", "c", 200),
            _finding("dead-transfer", "d", 50),
        ],
    }
    cands = candidates_from_objprof(report)
    # ranked by measured wasted ns, each pattern onto its action kind
    assert [(c.kind, c.weight) for c in cands] == [
        ("colocate-threads", 300),
        ("replicate-read-mostly", 200),
        ("home-migration", 100),
        ("trim-transfers", 50),
    ]
    assert cands[2].target_node == 2
    assert "measured contended-home at repro/workloads/x.py:1" in cands[2].reason


def test_objprof_unknown_patterns_are_skipped():
    report = {"findings": [_finding("novel-pattern", "a", 999)]}
    assert candidates_from_objprof(report) == []


def test_merge_puts_measured_first_and_dedupes_statics():
    dynamic = candidates_from_objprof(
        {"findings": [_finding("contended-home", "a", 100, target_node=2)]}
    )
    dup_static = PlacementCandidate(
        kind="home-migration", site="a", obj_ids=(9,), threads=(1,),
        target_node=2, weight=5_000, reason="predicted",
    )
    fresh_static = PlacementCandidate(
        kind="colocate-threads", site="b", obj_ids=(3,), threads=(0, 1),
        target_node=None, weight=64, reason="predicted",
    )
    merged = merge_candidates([dup_static, fresh_static], dynamic)
    # measured leads, duplicate (kind, site, target) static dropped, and
    # the surviving static keeps its own rank position after the
    # dynamics even though its byte-weight exceeds nothing comparable.
    assert merged == dynamic + [fresh_static]


def test_candidate_is_hashable_and_frozen():
    cand = PlacementCandidate(
        kind="home-migration",
        site="s",
        obj_ids=(1,),
        threads=(0,),
        target_node=1,
        weight=10,
        reason="r",
    )
    assert hash(cand) is not None
    try:
        cand.weight = 11
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("PlacementCandidate must be frozen")
