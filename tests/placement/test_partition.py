"""Tests for TCM-driven thread partitioning."""

import numpy as np
import pytest

from repro.placement.partition import greedy_partition, partition_quality, refine_partition


def block_tcm(n_groups=4, group_size=2, intra=100.0, inter=1.0):
    n = n_groups * group_size
    tcm = np.full((n, n), inter)
    for g in range(n_groups):
        lo, hi = g * group_size, (g + 1) * group_size
        tcm[lo:hi, lo:hi] = intra
    np.fill_diagonal(tcm, 0.0)
    return tcm


class TestPartitionQuality:
    def test_perfect_assignment(self):
        tcm = block_tcm(2, 2, intra=10.0, inter=0.0)
        q = partition_quality(tcm, [0, 0, 1, 1])
        assert q["remote_bytes"] == 0
        assert q["local_fraction"] == 1.0

    def test_worst_assignment(self):
        tcm = block_tcm(2, 2, intra=10.0, inter=0.0)
        q = partition_quality(tcm, [0, 1, 0, 1])
        assert q["local_bytes"] == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            partition_quality(block_tcm(), [0, 1])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            partition_quality(np.zeros((2, 3)), [0, 0])


class TestGreedyPartition:
    def test_groups_colocated(self):
        tcm = block_tcm(4, 2)
        assignment = greedy_partition(tcm, 4)
        for g in range(4):
            assert assignment[2 * g] == assignment[2 * g + 1]

    def test_balance_respected(self):
        tcm = block_tcm(4, 2)
        assignment = greedy_partition(tcm, 4)
        loads = [assignment.count(k) for k in range(4)]
        assert max(loads) <= 2

    def test_all_threads_placed(self):
        tcm = block_tcm(3, 3)
        assignment = greedy_partition(tcm, 3)
        assert all(0 <= a < 3 for a in assignment)

    def test_isolated_threads_still_placed(self):
        tcm = np.zeros((4, 4))
        assignment = greedy_partition(tcm, 2)
        assert sorted(assignment.count(k) for k in range(2)) == [2, 2]

    def test_impossible_capacity_rejected(self):
        with pytest.raises(ValueError):
            greedy_partition(block_tcm(2, 2), 2, capacity=1)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            greedy_partition(block_tcm(), 0)


class TestRefinePartition:
    def test_repairs_bad_seed(self):
        tcm = block_tcm(2, 2, intra=100.0, inter=0.0)
        bad = [0, 1, 0, 1]
        refined = refine_partition(tcm, bad)
        q = partition_quality(tcm, refined)
        assert q["local_fraction"] == 1.0

    def test_preserves_load(self):
        tcm = block_tcm(4, 2)
        seed = [0, 1, 2, 3, 0, 1, 2, 3]
        refined = refine_partition(tcm, seed)
        for k in range(4):
            assert refined.count(k) == seed.count(k)

    def test_never_degrades(self):
        rng = np.random.default_rng(3)
        tcm = rng.random((8, 8))
        tcm = (tcm + tcm.T) / 2
        np.fill_diagonal(tcm, 0.0)
        seed = [0, 0, 1, 1, 2, 2, 3, 3]
        before = partition_quality(tcm, seed)["remote_bytes"]
        after = partition_quality(tcm, refine_partition(tcm, seed))["remote_bytes"]
        assert after <= before + 1e-9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            refine_partition(block_tcm(), [0])
