"""Tests for the online rebalancer (profile -> balancer -> migration),
including the paper's Section VI "home effect" caveat: migrating
correlated threads together without re-homing their data can *increase*
traffic, and combining the rebalancer with home migration fixes it."""

import pytest

from repro.core.costmodel import MigrationCostModel
from repro.core.profiler import ProfilerSuite
from repro.dsm.homemigration import DominantWriterPolicy, HomeMigrationEngine
from repro.placement.balancer import CorrelationAwareBalancer
from repro.placement.runtime_balancer import OnlineRebalancer
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload


def scrambled_placement(n_threads: int, n_nodes: int) -> list[int]:
    """Worst-case start: group partners land on different nodes."""
    return [t % n_nodes for t in range(n_threads)]


def run(*, rebalance: bool, home_migration: bool = False, rounds: int = 12):
    wl = GroupSharingWorkload(
        n_threads=8,
        group_size=2,
        objects_per_group=128,
        private_per_thread=16,
        object_size=256,
        rounds=rounds,
        group_writes=True,  # producer/consumer: placement has recurring value
        seed=4,
    )
    djvm = DJVM(n_nodes=4, costs=CostModel.fast_test())
    wl.build(djvm, placement=scrambled_placement(8, 4))
    suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
    suite.set_rate_all(4)
    rebalancer = None
    if rebalance:
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs),
            horizon_intervals=max(2 * rounds, 20),
        )
        rebalancer = OnlineRebalancer(
            suite, balancer, djvm.migration, warmup_intervals=3
        )
        djvm.add_timer(rebalancer)
    if home_migration:
        engine = HomeMigrationEngine(djvm.hlrc)
        djvm.add_hook(
            DominantWriterPolicy(engine, threshold=0.6, min_writes=3, cooldown_intervals=4)
        )
    result = djvm.run(wl.programs())
    return wl, djvm, result, rebalancer


class TestOnlineRebalancer:
    def test_fires_once_after_warmup(self):
        wl, djvm, result, rb = run(rebalance=True)
        assert rb.fired
        assert rb.proposals, "expected profitable moves from a scrambled start"

    def test_migrations_executed(self):
        wl, djvm, result, rb = run(rebalance=True)
        assert len(djvm.migration.results) == len(rb.proposals)
        moved = {r.thread_id for r in djvm.migration.results}
        assert moved == {p.thread_id for p in rb.proposals}

    def test_partners_colocated_after_rebalance(self):
        wl, djvm, result, rb = run(rebalance=True)
        placement = {t.thread_id: t.node_id for t in djvm.threads}
        colocated = sum(
            1 for g in range(4) if placement[2 * g] == placement[2 * g + 1]
        )
        assert colocated >= 3

    def test_home_effect_pathology_and_its_fix(self):
        """The Section VI caveat, reproduced and resolved:

        * rebalancing alone moves both partners away from their objects'
          homes — recurring diffs/faults now cross the wire twice, and
          traffic does NOT improve;
        * rebalancing + dominant-writer home migration re-homes the data
          to the co-located node and beats the baseline.
        """
        _, _, base, _ = run(rebalance=False)
        _, _, moved_only, _ = run(rebalance=True)
        _, djvm, moved_homed, _ = run(rebalance=True, home_migration=True)

        # The pathology: migration without re-homing fails to cut traffic.
        assert moved_only.traffic.gos_bytes > 0.8 * base.traffic.gos_bytes
        # The fix: with home migration the combination wins clearly.
        assert moved_homed.traffic.gos_bytes < 0.8 * base.traffic.gos_bytes
        assert moved_homed.traffic.gos_bytes < moved_only.traffic.gos_bytes

    def test_invalid_warmup_rejected(self):
        wl = GroupSharingWorkload(n_threads=4, group_size=2, rounds=2)
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        wl.build(djvm)
        suite = ProfilerSuite(djvm, send_oals=False)
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs)
        )
        with pytest.raises(ValueError):
            OnlineRebalancer(suite, balancer, djvm.migration, warmup_intervals=0)

    def test_no_proposals_no_migrations(self):
        """With negligible sharing, the balancer proposes nothing and no
        thread moves."""
        wl = GroupSharingWorkload(
            n_threads=8,
            group_size=2,
            objects_per_group=1,
            private_per_thread=64,
            object_size=16,
            rounds=6,
            seed=4,
        )
        djvm = DJVM(n_nodes=4, costs=CostModel.fast_test())
        wl.build(djvm, placement=scrambled_placement(8, 4))
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_rate_all(4)
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs), horizon_intervals=2
        )
        rb = OnlineRebalancer(suite, balancer, djvm.migration, warmup_intervals=3)
        djvm.add_timer(rb)
        djvm.run(wl.programs())
        assert rb.fired
        assert djvm.migration.results == []
