"""Tests for the DJVM facade."""

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


class TestSetup:
    def test_spawn_thread_placement(self):
        djvm = DJVM(n_nodes=2)
        t = djvm.spawn_thread(1)
        assert t.node_id == 1
        assert t.thread_id in djvm.cluster[1].thread_ids

    def test_spawn_bad_node_rejected(self):
        with pytest.raises(ValueError):
            DJVM(n_nodes=2).spawn_thread(5)

    def test_round_robin_placement(self):
        djvm = DJVM(n_nodes=3)
        djvm.spawn_threads(6, placement="round_robin")
        assert [t.node_id for t in djvm.threads] == [0, 1, 2, 0, 1, 2]

    def test_block_placement(self):
        djvm = DJVM(n_nodes=2)
        djvm.spawn_threads(4, placement="block")
        assert [t.node_id for t in djvm.threads] == [0, 0, 1, 1]

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            DJVM(n_nodes=2).spawn_threads(2, placement="nope")

    def test_define_class_delegates(self):
        djvm = DJVM(n_nodes=1)
        cls = djvm.define_class("X", 32)
        assert djvm.registry.get("X") is cls


class TestRunResult:
    def run_simple(self):
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_threads(2)
        return djvm, djvm.run(
            {
                0: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
                1: wrap_main([P.read(obj.obj_id), P.barrier(0)]),
            }
        )

    def test_execution_time_is_max_finish(self):
        djvm, res = self.run_simple()
        assert res.execution_time_ms == max(res.thread_finish_ms.values())

    def test_counters_surface(self):
        djvm, res = self.run_simple()
        assert res.counters["faults"] == 1  # thread 1 faults the remote copy
        assert res.counters["intervals"] == 4

    def test_total_cpu_aggregates(self):
        djvm, res = self.run_simple()
        total = res.total_cpu
        assert total.total_ns == sum(c.total_ns for c in res.thread_cpu.values())

    def test_summary_renders(self):
        djvm, res = self.run_simple()
        s = res.summary()
        assert "execution" in s and "GOS traffic" in s
