"""Event-kernel integration tests: trace determinism, event-driven
barriers/migrations/timers, and partial-party barriers."""

from repro.core.profiler import ProfilerSuite
from repro.core.stack_sampler import StackSampler
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.interpreter import Interpreter
from repro.runtime.migration import MigrationPlan
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main

FAST = CostModel.fast_test()


def contended_workload(*, correlation: bool = False):
    """A 3-node, 3-thread run with real cross-node sharing, lock
    contention and two barrier rounds; returns (djvm, result, tcm)."""
    djvm = DJVM(n_nodes=3, costs=FAST, keep_event_trace=True)
    cls = simple_class(djvm, "Obj", 128)
    objs = [djvm.allocate(cls, i % 3) for i in range(9)]
    for i in range(3):
        djvm.spawn_thread(i)
    suite = None
    if correlation:
        suite = ProfilerSuite(djvm, correlation=True, send_oals=True)
        suite.set_rate_all("full")
    programs = {}
    for t in range(3):
        ops = []
        for rnd in range(2):
            for o in objs[t::3]:
                ops.append(P.read(o.obj_id))
            ops.append(P.write(objs[(t + rnd) % len(objs)].obj_id))
            ops.append(P.acquire(0))
            ops.append(P.compute(5_000))
            ops.append(P.release(0))
            ops.append(P.barrier(rnd))
        programs[t] = wrap_main(ops)
    result = djvm.run(programs)
    tcm = suite.collector.tcm() if suite is not None else None
    return djvm, result, tcm


class TestTraceDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        """Same workload twice: byte-identical event trace, protocol
        counters, traffic, and final clocks."""
        djvm1, res1, _ = contended_workload()
        djvm2, res2, _ = contended_workload()
        assert djvm1.event_trace  # non-empty
        assert djvm1.event_trace == djvm2.event_trace
        assert res1.counters == res2.counters
        assert res1.thread_finish_ms == res2.thread_finish_ms
        assert res1.traffic.total_bytes == res2.traffic.total_bytes

    def test_identical_runs_produce_identical_tcms(self):
        _, res1, tcm1 = contended_workload(correlation=True)
        _, res2, tcm2 = contended_workload(correlation=True)
        assert tcm1 is not None and tcm1.sum() > 0
        assert tcm1.tobytes() == tcm2.tobytes()
        assert res1.counters == res2.counters

    def test_trace_contains_expected_event_kinds(self):
        djvm, _, _ = contended_workload()
        kinds = {kind for _, kind, _ in djvm.event_trace}
        # Two barrier rounds -> two BARRIER_RELEASE dispatches.
        assert kinds >= {"SEGMENT_END", "BARRIER_RELEASE"}
        releases = [e for e in djvm.event_trace if e[1] == "BARRIER_RELEASE"]
        assert len(releases) == 2

    def test_trace_times_nondecreasing_over_heap_events(self):
        djvm, _, _ = contended_workload()
        heap_times = [t for t, kind, _ in djvm.event_trace if kind != "TIMER_FIRE"]
        assert heap_times == sorted(heap_times)


class TestEventDrivenSubsystems:
    def test_scheduled_migration_appears_as_migration_check(self):
        """A post-sync migration trigger routes through a MIGRATION_CHECK
        event rather than an inline poll."""
        djvm = DJVM(n_nodes=2, costs=FAST, keep_event_trace=True)
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        djvm.migration.schedule(MigrationPlan(thread_id=0, target_node=1, at_interval=2))
        djvm.run({0: wrap_main([P.read(obj.obj_id), P.barrier(0), P.read(obj.obj_id)])})
        assert djvm.threads[0].node_id == 1
        assert any(kind == "MIGRATION_CHECK" for _, kind, _ in djvm.event_trace)

    def test_deadline_timer_fires_recorded_in_trace(self):
        """Deadline-API timers (stack sampler) record TIMER_FIRE events
        at the simulated instant they fire."""
        djvm = DJVM(n_nodes=1, costs=FAST, keep_event_trace=True)
        simple_class(djvm)
        djvm.spawn_thread(0)
        sampler = StackSampler(FAST, gap_ms=0.001)
        djvm.add_timer(sampler)
        djvm.run({0: wrap_main([P.compute(200_000) for _ in range(20)])})
        assert sampler.samples_taken > 0
        fires = [e for e in djvm.event_trace if e[1] == "TIMER_FIRE"]
        assert len(fires) > 0


class TestPartialBarrier:
    def test_barrier_over_subset_of_threads(self):
        """barrier_parties != len(threads): the two participants
        rendezvous while the bystander runs to completion."""
        djvm = DJVM(n_nodes=2, costs=FAST, keep_event_trace=True)
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        for i in range(3):
            djvm.spawn_thread(i % 2)
        interp = Interpreter(
            djvm.hlrc, djvm.threads, barrier_parties=2, keep_event_trace=True
        )
        interp.attach_programs(
            {
                0: wrap_main([P.barrier(0), P.read(obj.obj_id)]),
                1: wrap_main([P.barrier(0)]),
                2: wrap_main([P.read(obj.obj_id), P.compute(1_000)]),
            }
        )
        interp.run()
        barrier = djvm.hlrc.sync.barriers[0]
        assert barrier.episodes == 1
        assert barrier.waiting == {}
        assert all(t.state.value == "done" for t in djvm.threads)
        releases = [e for e in interp.kernel.trace if e[1] == "BARRIER_RELEASE"]
        assert len(releases) == 1
