"""Tests for the interpreter/scheduler."""

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.thread import ThreadState
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


def one_thread_djvm():
    djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
    cls = simple_class(djvm)
    obj = djvm.allocate(cls, 0)
    djvm.spawn_thread(0)
    return djvm, obj


class TestBasicExecution:
    def test_compute_advances_clock(self):
        djvm, obj = one_thread_djvm()
        djvm.costs  # fast_test scale = 0.01
        djvm.run({0: wrap_main([P.compute(1_000_000)])})
        t = djvm.threads[0]
        assert t.cpu.compute_ns == 10_000
        assert t.state is ThreadState.DONE

    def test_call_ret_maintains_stack(self):
        djvm, obj = one_thread_djvm()
        captured = []

        class Spy:
            def maybe_fire(self, thread):
                captured.append(len(thread.stack))

        djvm.add_timer(Spy())
        djvm.run(
            {
                0: [
                    P.call("main", 2),
                    P.call("inner", 2),
                    P.ret(),
                    P.ret(),
                ]
            }
        )
        assert captured == [1, 2, 1, 0]
        assert len(djvm.threads[0].stack) == 0

    def test_setslot_mutates_top_frame(self):
        djvm, obj = one_thread_djvm()
        slots = []

        class Spy:
            def maybe_fire(self, thread):
                if thread.stack.top is not None:
                    slots.append(tuple(thread.stack.top.slots))

        djvm.add_timer(Spy())
        djvm.run({0: [P.call("main", 2), P.setslot(0, 42), P.ret()]})
        assert (42, None) in slots

    def test_setslot_without_frame_raises(self):
        djvm, obj = one_thread_djvm()
        with pytest.raises(RuntimeError, match="SETSLOT"):
            djvm.run({0: [P.setslot(0, 1)]})

    def test_unknown_opcode_raises(self):
        djvm, obj = one_thread_djvm()
        with pytest.raises(ValueError, match="unknown opcode"):
            djvm.run({0: [(99, 1)]})

    def test_pc_counts_ops(self):
        djvm, obj = one_thread_djvm()
        res = djvm.run({0: wrap_main([P.read(obj.obj_id), P.compute(1)])})
        assert res.ops_executed == 4
        assert djvm.threads[0].pc == 4


class TestScheduling:
    def test_min_clock_thread_runs_first_after_sync(self):
        """After a sync yield, the thread with the smaller clock resumes."""
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        djvm.spawn_thread(1)
        order = []

        class Spy:
            def maybe_fire(self, thread):
                order.append(thread.thread_id)

        djvm.add_timer(Spy())
        djvm.run(
            {
                0: wrap_main([P.compute(100_000_000), P.barrier(0)]),
                1: wrap_main([P.compute(1_000), P.barrier(0)]),
            }
        )
        assert set(order) == {0, 1}

    def test_barrier_rendezvous_blocks_until_all(self):
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        simple_class(djvm)
        for n in range(2):
            djvm.spawn_thread(n)
        djvm.run(
            {
                0: wrap_main([P.barrier(0), P.barrier(1)]),
                1: wrap_main([P.barrier(0), P.barrier(1)]),
            }
        )
        b = djvm.hlrc.sync.barriers[0]
        assert b.episodes == 1
        assert b.waiting == {}

    def test_barrier_mismatch_deadlocks(self):
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        simple_class(djvm)
        for n in range(2):
            djvm.spawn_thread(n)
        with pytest.raises(RuntimeError, match="deadlock"):
            djvm.run(
                {
                    0: wrap_main([P.barrier(0)]),
                    1: wrap_main([]),
                }
            )

    def test_lock_contention_serializes(self):
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm)
        obj = djvm.allocate(cls, 0)
        for n in range(2):
            djvm.spawn_thread(n)
        djvm.run(
            {
                0: wrap_main([P.acquire(0), P.compute(50_000_000), P.release(0), P.barrier(0)]),
                1: wrap_main([P.acquire(0), P.release(0), P.barrier(0)]),
            }
        )
        lock = djvm.hlrc.sync.locks[0]
        assert lock.acquisitions == 2
        assert lock.holder is None

    def test_missing_program_rejected(self):
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        djvm.spawn_thread(0)
        djvm.spawn_thread(0)
        with pytest.raises(KeyError):
            djvm.run({0: []})


class TestTimers:
    def test_timers_polled_every_op(self):
        djvm, obj = one_thread_djvm()
        fires = []

        class Counter:
            def maybe_fire(self, thread):
                fires.append(thread.clock.now_ns)

        djvm.add_timer(Counter())
        djvm.run({0: wrap_main([P.read(obj.obj_id), P.read(obj.obj_id)])})
        assert len(fires) == 4  # call, read, read, ret
        assert fires == sorted(fires)
