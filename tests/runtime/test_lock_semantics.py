"""Lock semantics under contention: queueing, handover order, deadlock."""

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main


def make(n_threads=2, n_nodes=2):
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 64)
    obj = djvm.allocate(cls, 0)
    for i in range(n_threads):
        djvm.spawn_thread(i % n_nodes)
    return djvm, obj


class TestContention:
    def test_waiter_parks_and_resumes(self):
        djvm, obj = make()
        djvm.run(
            {
                0: wrap_main([P.acquire(0), P.compute(10_000_000), P.release(0), P.barrier(0)]),
                1: wrap_main([P.acquire(0), P.release(0), P.barrier(0)]),
            }
        )
        lock = djvm.hlrc.sync.locks[0]
        assert lock.acquisitions == 2
        assert lock.waiters == []
        assert lock.holder is None

    def test_critical_sections_serialize_in_time(self):
        """The waiter's grant follows the holder's release: the waiter's
        fetch observes the post-release version."""
        djvm, obj = make()
        djvm.run(
            {
                0: wrap_main([P.acquire(0), P.write(obj.obj_id), P.compute(50_000_000), P.release(0), P.barrier(0)]),
                1: wrap_main([P.acquire(0), P.read(obj.obj_id), P.release(0), P.barrier(0)]),
            }
        )
        # Thread 0 writes its home copy; thread 1's single fault must have
        # fetched the post-release version (grant time > release time).
        assert djvm.hlrc.counters["faults"] == 1
        record = djvm.hlrc.heaps[1].get(obj.obj_id)
        assert record is not None
        assert record.fetched_version == djvm.gos.get(obj.obj_id).home_version == 1

    def test_three_way_fifo_handover(self):
        djvm, obj = make(n_threads=3, n_nodes=3)
        order = []

        class Tracker:
            def on_interval_open(self, thread):
                pass

            def on_access(self, thread, obj, **kw):
                order.append(thread.thread_id)

            def on_interval_close(self, thread, interval, sync_dst):
                pass

        djvm.add_hook(Tracker())
        programs = {
            tid: wrap_main(
                [P.compute(tid * 1_000_000), P.acquire(0), P.read(obj.obj_id), P.release(0), P.barrier(0)]
            )
            for tid in range(3)
        }
        djvm.run(programs)
        assert djvm.hlrc.sync.locks[0].acquisitions == 3
        assert len(order) == 3

    def test_two_lock_deadlock_detected(self):
        """Opposite-order nested acquires deadlock; the scheduler must
        diagnose rather than hang."""
        djvm, obj = make()
        with pytest.raises(RuntimeError, match="deadlock"):
            djvm.run(
                {
                    0: wrap_main(
                        [P.acquire(0), P.compute(10_000_000), P.acquire(1),
                         P.release(1), P.release(0), P.barrier(0)]
                    ),
                    1: wrap_main(
                        [P.acquire(1), P.compute(10_000_000), P.acquire(0),
                         P.release(0), P.release(1), P.barrier(0)]
                    ),
                }
            )

    def test_reacquire_after_release_by_same_thread(self):
        djvm, obj = make(n_threads=1, n_nodes=1)
        djvm.run(
            {
                0: wrap_main(
                    [P.acquire(0), P.release(0), P.acquire(0), P.release(0)]
                )
            }
        )
        assert djvm.hlrc.sync.locks[0].acquisitions == 2
