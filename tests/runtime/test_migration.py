"""Tests for the thread migration engine."""

import pytest

from repro.dsm.states import RealState
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.migration import MigrationPlan
from repro.sim.costs import CostModel
from repro.sim.network import MessageKind

from tests.conftest import simple_class, wrap_main


def setup(n_objects=4):
    djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
    cls = simple_class(djvm, "Obj", 256)
    objs = [djvm.allocate(cls, 0) for _ in range(n_objects)]
    djvm.spawn_thread(0)
    return djvm, objs


class TestMigrate:
    def test_rehomes_thread(self):
        djvm, objs = setup()
        t = djvm.threads[0]
        result = djvm.migration.migrate(t, 1)
        assert t.node_id == 1
        assert t.thread_id in djvm.cluster[1].thread_ids
        assert t.thread_id not in djvm.cluster[0].thread_ids
        assert result.to_node == 1
        assert t.migrations == 1

    def test_same_node_rejected(self):
        djvm, objs = setup()
        with pytest.raises(ValueError, match="already on node"):
            djvm.migration.migrate(djvm.threads[0], 0)

    def test_bad_target_rejected(self):
        djvm, objs = setup()
        with pytest.raises(ValueError, match="out of range"):
            djvm.migration.migrate(djvm.threads[0], 5)

    def test_direct_cost_scales_with_stack(self):
        djvm, objs = setup()
        t = djvm.threads[0]
        from repro.runtime.stack import Frame

        small = djvm.migration.migrate(t, 1).direct_cost_ns
        t.stack.push(Frame("m", 200))
        big = djvm.migration.migrate(t, 0).direct_cost_ns
        assert big > small

    def test_migration_message_sent(self):
        djvm, objs = setup()
        djvm.migration.migrate(djvm.threads[0], 1)
        stats = djvm.cluster.network.stats
        assert stats.count_by_kind.get(MessageKind.MIGRATION, 0) == 1


class TestPrefetch:
    def test_prefetch_installs_valid_copies(self):
        djvm, objs = setup()
        ids = [o.obj_id for o in objs]
        result = djvm.migration.migrate(djvm.threads[0], 1, prefetch=ids)
        assert result.prefetched_objects == len(ids)
        for oid in ids:
            rec = djvm.hlrc.heaps[1].get(oid)
            assert rec is not None and rec.real_state is RealState.VALID

    def test_prefetch_skips_target_homed_objects(self):
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 64)
        local = djvm.allocate(cls, 1)
        remote = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        result = djvm.migration.migrate(
            djvm.threads[0], 1, prefetch=[local.obj_id, remote.obj_id]
        )
        assert result.prefetched_ids == [remote.obj_id]

    def test_prefetch_avoids_post_migration_faults(self):
        """The headline mechanism: with the sticky set prefetched, the
        migrated thread's re-accesses hit locally."""
        read_ops = lambda objs: [P.read(o.obj_id) for o in objs]

        def run(prefetch: bool) -> int:
            djvm, objs = setup()
            plan = MigrationPlan(
                thread_id=0,
                target_node=1,
                at_pc=len(objs) + 1,  # after the first sweep, mid-interval
                prefetch=[o.obj_id for o in objs] if prefetch else None,
            )
            djvm.migration.schedule(plan)
            djvm.run({0: wrap_main(read_ops(objs) + read_ops(objs))})
            return djvm.hlrc.counters["faults"]

        faults_without = run(prefetch=False)
        faults_with = run(prefetch=True)
        # Thread starts at the objects' home, so pre-migration reads never
        # fault; without prefetch every re-read after landing faults.
        assert faults_without == 4
        assert faults_with == 0


class TestScheduledPlans:
    def test_at_interval_trigger(self):
        djvm, objs = setup()
        djvm.migration.schedule(MigrationPlan(thread_id=0, target_node=1, at_interval=2))
        djvm.run(
            {0: wrap_main([P.read(objs[0].obj_id), P.barrier(0), P.read(objs[1].obj_id), P.barrier(1)])}
        )
        assert djvm.threads[0].node_id == 1
        assert len(djvm.migration.results) == 1

    def test_duplicate_schedule_rejected(self):
        djvm, objs = setup()
        djvm.migration.schedule(MigrationPlan(thread_id=0, target_node=1, at_pc=1))
        with pytest.raises(ValueError, match="pending"):
            djvm.migration.schedule(MigrationPlan(thread_id=0, target_node=1, at_pc=2))

    def test_prefetch_provider_invoked_at_migration_time(self):
        djvm, objs = setup()
        seen = {}

        def provider(thread):
            seen["pc"] = thread.pc
            return [objs[0].obj_id]

        djvm.migration.schedule(
            MigrationPlan(thread_id=0, target_node=1, at_pc=2, prefetch_provider=provider)
        )
        djvm.run({0: wrap_main([P.read(objs[0].obj_id), P.read(objs[1].obj_id)])})
        assert seen["pc"] >= 2
        assert djvm.migration.results[0].prefetched_objects == 1
