"""Tests for the op-stream format and builder."""

from repro.runtime import program as P
from repro.runtime.program import ProgramBuilder, validate_program


class TestConstructors:
    def test_read_defaults(self):
        assert P.read(5) == (P.OP_READ, 5, 1, 1, 0)

    def test_write_fields(self):
        assert P.write(5, n_elems=3, repeat=2, elem_off=7) == (P.OP_WRITE, 5, 3, 2, 7)

    def test_call_refs_tuple(self):
        op = P.call("m", 4, refs=[(0, 9)])
        assert op == (P.OP_CALL, "m", 4, ((0, 9),))

    def test_sync_ops(self):
        assert P.acquire(3) == (P.OP_ACQUIRE, 3)
        assert P.release(3) == (P.OP_RELEASE, 3)
        assert P.barrier(2) == (P.OP_BARRIER, 2)


class TestProgramBuilder:
    def test_chaining_builds_list(self):
        ops = (
            ProgramBuilder()
            .call("main", 2)
            .read(0)
            .write(0)
            .compute(10)
            .setslot(0, 5)
            .barrier(0)
            .ret()
            .ops()
        )
        assert [op[0] for op in ops] == [
            P.OP_CALL,
            P.OP_READ,
            P.OP_WRITE,
            P.OP_COMPUTE,
            P.OP_SETSLOT,
            P.OP_BARRIER,
            P.OP_RET,
        ]

    def test_len_and_iter(self):
        b = ProgramBuilder().read(0).read(1)
        assert len(b) == 2
        assert len(list(b)) == 2

    def test_extend(self):
        b = ProgramBuilder().extend([P.read(0), P.ret()])
        assert len(b) == 2


class TestValidateProgram:
    def test_valid_program(self):
        ops = ProgramBuilder().call("m", 2).read(0).ret().ops()
        assert validate_program(ops) == []

    def test_unbalanced_ret(self):
        assert any("RET" in p for p in validate_program([P.ret()]))

    def test_unpopped_frames(self):
        assert any("unpopped" in p for p in validate_program([P.call("m", 2)]))

    def test_setslot_outside_frame(self):
        assert any("SETSLOT" in p for p in validate_program([P.setslot(0, 1)]))

    def test_double_acquire(self):
        probs = validate_program([P.acquire(1), P.acquire(1), P.release(1), P.release(1)])
        assert any("already held" in p for p in probs)

    def test_unreleased_lock(self):
        assert any("holding locks" in p for p in validate_program([P.acquire(2)]))

    def test_release_unheld(self):
        assert any("not held" in p for p in validate_program([P.release(9)]))


class TestWorkloadProgramsAreValid:
    """Every shipped workload must emit structurally valid op streams."""

    def test_sor(self):
        from repro.runtime.djvm import DJVM
        from repro.sim.costs import CostModel
        from repro.workloads import SORWorkload

        wl = SORWorkload(n=64, rounds=2, n_threads=4)
        wl.build(DJVM(4, costs=CostModel.fast_test()))
        for t in range(4):
            assert validate_program(list(wl.program(t))) == []

    def test_barnes_hut(self):
        from repro.runtime.djvm import DJVM
        from repro.sim.costs import CostModel
        from repro.workloads import BarnesHutWorkload

        wl = BarnesHutWorkload(n_bodies=128, rounds=2, n_threads=4)
        wl.build(DJVM(4, costs=CostModel.fast_test()))
        for t in range(4):
            assert validate_program(list(wl.program(t))) == []

    def test_water_spatial(self):
        from repro.runtime.djvm import DJVM
        from repro.sim.costs import CostModel
        from repro.workloads import WaterSpatialWorkload

        wl = WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=4)
        wl.build(DJVM(4, costs=CostModel.fast_test()))
        for t in range(4):
            assert validate_program(list(wl.program(t))) == []


class TestCompiledProgramEdgeCases:
    """IR edge cases the static analyses must handle without blowing up."""

    def test_empty_program(self):
        from repro.runtime.program import compile_program

        prog = compile_program([])
        assert prog.n_ops == 0
        assert prog.codes == b""
        assert prog.sync_points() == []
        assert prog.vector_runs() == {}
        assert validate_program(prog) == []

    def test_single_segment_thread(self):
        """A thread with no sync ops at all is one segment."""
        from repro.runtime.program import compile_program

        ops = ProgramBuilder().call("m", 2).read(0).write(0).ret().ops()
        prog = compile_program(ops)
        assert prog.sync_points() == []
        assert validate_program(prog) == []

    def test_back_to_back_barriers(self):
        """Adjacent barriers produce empty segments, not bogus ones."""
        from repro.runtime.program import compile_program

        ops = [P.barrier(0), P.barrier(1), P.barrier(2)]
        prog = compile_program(ops)
        assert prog.sync_points() == [(0, P.OP_BARRIER), (1, P.OP_BARRIER), (2, P.OP_BARRIER)]

    def test_max_opcode_id_accepted(self):
        """OP_BARRIER (8) is the largest opcode and must compile."""
        from repro.runtime.program import compile_program

        prog = compile_program([P.barrier(0)])
        assert prog.codes == bytes([P.OP_BARRIER])

    def test_opcode_past_range_rejected(self):
        import pytest

        from repro.runtime.program import compile_program

        with pytest.raises(ValueError, match="unknown opcode"):
            compile_program([(P.OP_BARRIER + 1, 0)])

    def test_sync_points_mixed_stream(self):
        from repro.runtime.program import compile_program

        ops = [
            P.call("m", 2),
            P.acquire(0),
            P.read(1),
            P.release(0),
            P.barrier(0),
            P.ret(),
        ]
        prog = compile_program(ops)
        assert prog.sync_points() == [
            (1, P.OP_ACQUIRE),
            (3, P.OP_RELEASE),
            (4, P.OP_BARRIER),
        ]

    def test_compile_is_idempotent_and_preserves_verified_flag(self):
        from repro.runtime.program import compile_program

        prog = compile_program([P.read(0)])
        prog._verified = True
        assert compile_program(prog) is prog
        assert compile_program(prog)._verified
