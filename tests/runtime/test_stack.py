"""Tests for the simulated Java stack."""

import pytest

from repro.runtime.stack import Frame, JavaStack


class TestFrame:
    def test_slots_initialized(self):
        f = Frame("m", 4, refs={1: 42})
        assert f.slots == [None, 42, None, None]
        assert not f.visited

    def test_ref_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Frame("m", 2, refs={5: 1})

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Frame("m", -1)

    def test_unique_uids(self):
        assert Frame("m", 1).frame_uid != Frame("m", 1).frame_uid

    def test_ref_slots(self):
        f = Frame("m", 3, refs={0: 7, 2: 9})
        assert f.ref_slots() == [(0, 7), (2, 9)]

    def test_set_get_slot(self):
        f = Frame("m", 2)
        f.set_slot(1, 13)
        assert f.get_slot(1) == 13


class TestJavaStack:
    def make(self, n: int) -> tuple[JavaStack, list[Frame]]:
        st = JavaStack()
        frames = [Frame(f"m{i}", 2) for i in range(n)]
        for f in frames:
            st.push(f)
        return st, frames

    def test_push_pop_lifo(self):
        st, frames = self.make(3)
        assert st.pop() is frames[2]
        assert st.top is frames[1]
        assert len(st) == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            JavaStack().pop()

    def test_top_bottom(self):
        st, frames = self.make(3)
        assert st.top is frames[2]
        assert st.bottom is frames[0]
        assert JavaStack().top is None
        assert JavaStack().bottom is None

    def test_iteration_orders(self):
        st, frames = self.make(3)
        assert list(st) == frames
        assert list(st.frames_top_down()) == frames[::-1]

    def test_frame_at(self):
        st, frames = self.make(3)
        assert st.frame_at(0) is frames[2]
        assert st.frame_at(2) is frames[0]

    def test_total_slots(self):
        st = JavaStack()
        st.push(Frame("a", 3))
        st.push(Frame("b", 5))
        assert st.total_slots() == 8

    def test_live_refs(self):
        st = JavaStack()
        st.push(Frame("a", 2, refs={0: 5}))
        st.push(Frame("b", 2, refs={1: 5}))
        st.push(Frame("c", 2, refs={0: 9}))
        assert st.live_refs() == {5, 9}
