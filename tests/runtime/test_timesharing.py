"""Tests for the single-core-per-node timesharing model."""

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel

from tests.conftest import simple_class, wrap_main

WORK = 500_000_000  # 5 ms at fast_test scale


def run(n_nodes: int, n_threads: int, *, timeshare: bool):
    djvm = DJVM(
        n_nodes=n_nodes, costs=CostModel.fast_test(), timeshare_nodes=timeshare
    )
    simple_class(djvm)
    djvm.spawn_threads(n_threads, placement="block")
    programs = {
        t: wrap_main([P.compute(WORK), P.barrier(0)]) for t in range(n_threads)
    }
    return djvm.run(programs)


class TestTimesharing:
    def test_colocated_threads_serialize(self):
        """Two compute-bound threads on one single-core node take ~2x one
        thread's time; on two nodes they overlap."""
        one_node = run(1, 2, timeshare=True).execution_time_ms
        two_nodes = run(2, 2, timeshare=True).execution_time_ms
        assert one_node > 1.8 * two_nodes

    def test_smp_mode_overlaps(self):
        """With timesharing off, co-located threads run concurrently."""
        shared = run(1, 2, timeshare=False).execution_time_ms
        spread = run(2, 2, timeshare=False).execution_time_ms
        assert shared == pytest.approx(spread, rel=0.05)

    def test_one_thread_per_node_unaffected(self):
        """The paper's measurement configuration (1 thread/node) is
        identical under both models — the calibration anchor."""
        a = run(4, 4, timeshare=True).execution_time_ms
        b = run(4, 4, timeshare=False).execution_time_ms
        assert a == b

    def test_four_way_sharing_scales(self):
        quad = run(1, 4, timeshare=True).execution_time_ms
        solo = run(4, 4, timeshare=True).execution_time_ms
        assert quad > 3.5 * solo

    def test_migrated_thread_contends_at_destination(self):
        """After migrating onto a busy node, a thread serializes with its
        new neighbour rather than executing for free."""
        from repro.runtime.migration import MigrationPlan

        def finish(migrate: bool) -> float:
            djvm = DJVM(n_nodes=2, costs=CostModel.fast_test(), timeshare_nodes=True)
            simple_class(djvm)
            djvm.spawn_thread(0)
            djvm.spawn_thread(1)
            if migrate:
                djvm.migration.schedule(
                    MigrationPlan(thread_id=0, target_node=1, at_pc=2)
                )
            chunks = [P.compute(WORK // 8) for _ in range(8)]
            programs = {
                0: wrap_main(chunks + [P.barrier(0)]),
                1: wrap_main(chunks + [P.barrier(0)]),
            }
            return djvm.run(programs).execution_time_ms

        apart = finish(migrate=False)
        together = finish(migrate=True)
        assert together > 1.5 * apart
