"""Vectorized access replay vs the scalar oracle.

Randomized access programs (seeded) run twice — ``replay="scalar"`` and
``replay="vector"`` — and every observable must match: protocol
counters, thread clocks, network traffic, and the interval history down
to per-object access summaries in first-touch order.  Configurations
cover the paths the vector engine special-cases: no observers (the
summary-free fast path), interval history kept, a deadline-API timer,
a ``fast_on_access`` profiler hook, and the partitioned kernel on top.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime import program as P
from repro.runtime.djvm import DJVM

N_NODES = 4
N_THREADS = 4
N_SCALARS = 24
N_ARRAYS = 8
ARR_LEN = 64


def build_djvm(**kwargs) -> tuple[DJVM, list[int]]:
    djvm = DJVM(N_NODES, **kwargs)
    scalar_cls = djvm.define_class("Obj", 64)
    array_cls = djvm.define_class("Arr", is_array=True, element_size=8)
    obj_ids = [
        djvm.allocate(scalar_cls, i % N_NODES).obj_id for i in range(N_SCALARS)
    ]
    obj_ids += [
        djvm.allocate(array_cls, i % N_NODES, length=ARR_LEN).obj_id
        for i in range(N_ARRAYS)
    ]
    for t in range(N_THREADS):
        djvm.spawn_thread(t % N_NODES)
    return djvm, obj_ids


def random_programs(seed: int, obj_ids: list[int]) -> dict[int, list]:
    """Barrier-separated rounds of random access bursts.

    Bursts are long enough (up to 24 consecutive access ops) that most
    cross the vectorizer's minimum-run threshold, with short bursts,
    computes, locks and call/ret mixed in so scalar↔vector transitions
    and mid-segment sync points are exercised too."""
    rng = random.Random(seed)
    programs: dict[int, list] = {}
    rounds = 4
    for tid in range(N_THREADS):
        ops: list = [P.call("main", 2)]
        for rnd in range(rounds):
            for _burst in range(rng.randint(2, 4)):
                if rng.random() < 0.2:
                    ops.append(P.compute(rng.randint(1_000, 60_000)))
                if rng.random() < 0.3:
                    ops.append(P.acquire(0))
                    ops.append(P.write(rng.choice(obj_ids)))
                    ops.append(P.release(0))
                for _ in range(rng.randint(3, 24)):
                    oid = rng.choice(obj_ids)
                    if rng.random() < 0.35:
                        ops.append(P.write(oid, n_elems=rng.randint(1, 4)))
                    else:
                        ops.append(
                            P.read(
                                oid,
                                n_elems=rng.randint(1, 8),
                                repeat=rng.randint(1, 3),
                            )
                        )
            ops.append(P.barrier(rnd))
        ops.append(P.ret())
        programs[tid] = ops
    return programs


def fingerprint(djvm: DJVM, res) -> dict:
    history = {}
    for tid, intervals in sorted(djvm.hlrc.interval_history.items()):
        history[tid] = [
            (
                iv.interval_id,
                iv.start_ns,
                iv.end_ns,
                iv.close_reason,
                tuple(
                    (s.obj_id, s.reads, s.writes, s.first_ns, s.last_ns)
                    for s in iv.accesses.values()
                ),
                tuple(sorted(iv.written)),
            )
            for iv in intervals
        ]
    return {
        "counters": dict(sorted(res.counters.items())),
        "finish_ms": dict(sorted(res.thread_finish_ms.items())),
        "ops": res.ops_executed,
        "messages": res.traffic.messages,
        "by_kind": sorted(
            (str(k), tuple(v)) for k, v in res.traffic._by_kind.items()
        ),
        "history": history,
    }


def run_replay(
    seed: int,
    replay: str,
    *,
    observer: str | None = None,
    warm: bool = True,
    **kwargs,
):
    djvm, obj_ids = build_djvm(replay=replay, **kwargs)
    extra = None
    if observer == "timer":
        extra = DeadlineTimer()
        djvm.add_timer(extra)
    elif observer == "hook":
        extra = FastHook()
        djvm.add_hook(extra)
    progs = {
        tid: P.compile_program(ops)
        for tid, ops in random_programs(seed, obj_ids).items()
    }
    if replay == "vector" and warm:
        # These programs execute once, so the interpreter's warm-up
        # gate would keep every run scalar; pre-marking runs hot forces
        # the engine through the bulk path the tests are here to check.
        for cp in progs.values():
            for vr in cp.vector_runs().values():
                vr.hot = True
    res = djvm.run(progs)
    fp = fingerprint(djvm, res)
    if extra is not None:
        fp["observer"] = list(extra.events)
    return fp


class DeadlineTimer:
    """Deadline-API timer: fires every 200 simulated microseconds and
    records (thread, deadline) — firing order and count must not depend
    on the replay engine."""

    PERIOD_NS = 200_000

    def __init__(self) -> None:
        self._next: dict[int, int] = {}
        self.events: list[tuple[int, int]] = []

    def next_fire_ns(self, thread) -> int:
        return self._next.setdefault(thread.thread_id, self.PERIOD_NS)

    def maybe_fire(self, thread) -> None:
        now = thread.clock.now_ns
        nxt = self._next.setdefault(thread.thread_id, self.PERIOD_NS)
        while now >= nxt:
            self.events.append((thread.thread_id, nxt))
            nxt += self.PERIOD_NS
        self._next[thread.thread_id] = nxt


class FastHook:
    """A ``fast_on_access`` profiler hook recording first touches."""

    def __init__(self) -> None:
        self.events: list[tuple[int, int, int, bool]] = []

    def on_interval_open(self, thread) -> None:
        pass

    def on_interval_close(self, thread, interval, sync_dst) -> None:
        pass

    def on_access(self, thread, obj, **kw) -> None:  # pragma: no cover
        self.fast_on_access(thread, obj, kw.get("real_fault", False))

    def fast_on_access(self, thread, obj, real_fault) -> None:
        self.events.append(
            (thread.thread_id, thread.interval_counter, obj.obj_id, real_fault)
        )


SEEDS = [0, 1, 2, 3, 4]


@pytest.mark.parametrize("seed", SEEDS)
def test_vector_matches_scalar_bare(seed):
    """No observers: the engine's summary-free fast path."""
    assert run_replay(seed, "vector") == run_replay(seed, "scalar")


@pytest.mark.parametrize("seed", SEEDS)
def test_vector_matches_scalar_with_history(seed):
    """Interval history kept: full per-object summary bookkeeping."""
    assert run_replay(
        seed, "vector", keep_interval_history=True
    ) == run_replay(seed, "scalar", keep_interval_history=True)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_vector_matches_scalar_with_timer(seed):
    """Deadline-API timer: identical fire times through bulk advances."""
    assert run_replay(
        seed, "vector", observer="timer", keep_interval_history=True
    ) == run_replay(seed, "scalar", observer="timer", keep_interval_history=True)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_vector_matches_scalar_with_fast_hook(seed):
    """fast_on_access hook: same first-touch stream from both engines."""
    assert run_replay(
        seed, "vector", observer="hook", keep_interval_history=True
    ) == run_replay(seed, "scalar", observer="hook", keep_interval_history=True)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_cold_runs_warm_up_scalar_and_stay_identical(seed):
    """Without pre-marking, one-shot runs take the warm-up (scalar)
    path: results still match, and the engine reports no executions."""
    djvm, obj_ids = build_djvm(replay="vector", keep_interval_history=True)
    progs = {
        tid: P.compile_program(ops)
        for tid, ops in random_programs(seed, obj_ids).items()
    }
    fp = fingerprint(djvm, djvm.run(progs))
    assert fp == run_replay(seed, "scalar", keep_interval_history=True)
    # every run was sighted once, so all are marked hot but none ran hot
    for cp in progs.values():
        assert all(vr.hot for vr in cp.vector_runs().values())
        assert all(vr.uniq is None for vr in cp.vector_runs().values())


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_hot_runs_materialize_lanes_lazily(seed):
    """A program run twice (two DJVMs sharing the compiled form, as the
    bench harness does) vectorizes on the second pass and only then
    builds lanes."""
    fps = []
    progs = None
    for _ in range(2):
        djvm, obj_ids = build_djvm(replay="vector", keep_interval_history=True)
        if progs is None:
            progs = {
                tid: P.compile_program(ops)
                for tid, ops in random_programs(seed, obj_ids).items()
            }
        fps.append(fingerprint(djvm, djvm.run(progs)))
    assert fps[0] == fps[1] == run_replay(
        seed, "scalar", keep_interval_history=True
    )
    materialized = [
        vr
        for cp in progs.values()
        for vr in cp.vector_runs().values()
        if vr.uniq is not None
    ]
    assert materialized, "second execution should have engaged the engine"


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_partitioned_vector_matches_serial_scalar(seed):
    """Both tentpole layers stacked: partitioned kernel + vector replay
    against the serial-scalar oracle."""
    assert run_replay(
        seed,
        "vector",
        kernel="partitioned",
        partitions=2,
        keep_interval_history=True,
    ) == run_replay(seed, "scalar", keep_interval_history=True)
