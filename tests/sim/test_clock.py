"""Tests for simulated clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.clock import NS_PER_MS, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_advance(self):
        c = SimClock()
        assert c.advance(100) == 100
        assert c.advance(50) == 150

    def test_advance_negative_rejected(self):
        c = SimClock()
        with pytest.raises(ValueError):
            c.advance(-1)

    def test_advance_to_never_rewinds(self):
        c = SimClock(1000)
        c.advance_to(500)
        assert c.now_ns == 1000
        c.advance_to(2000)
        assert c.now_ns == 2000

    def test_ms_conversion(self):
        c = SimClock(3 * NS_PER_MS)
        assert c.now_ms == pytest.approx(3.0)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=30))
    def test_monotone_under_any_advance_sequence(self, deltas):
        c = SimClock()
        prev = 0
        for d in deltas:
            c.advance(d)
            assert c.now_ns >= prev
            prev = c.now_ns
        assert c.now_ns == sum(deltas)
