"""Tests for Cluster and Node."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.node import Node


class TestNode:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(-1)

    def test_starts_empty(self):
        n = Node(0)
        assert n.thread_ids == set()
        assert n.cpu.total_ns == 0


class TestCluster:
    def test_size_and_indexing(self):
        c = Cluster(4)
        assert len(c) == 4
        assert c[2].node_id == 2

    def test_master_defaults_to_node_zero(self):
        assert Cluster(3).master.node_id == 0

    def test_custom_master(self):
        assert Cluster(3, master_id=2).master.node_id == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(2, master_id=5)

    def test_node_of_thread(self):
        c = Cluster(2)
        c[1].thread_ids.add(7)
        assert c.node_of_thread(7).node_id == 1
        with pytest.raises(KeyError):
            c.node_of_thread(99)

    def test_default_costs_and_network(self):
        c = Cluster(2)
        assert c.costs.page_size == 4096
        assert c.network.latency_ns > 0
