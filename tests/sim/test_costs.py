"""Tests for the CPU cost model and accounting."""

import pytest

from repro.sim.costs import CostModel, CpuAccounting


class TestCostModel:
    def test_cost_ordering_preserved(self):
        """The calibrated ratios the reproduction relies on: fast-path
        check << logging slow path << anything network-ish."""
        c = CostModel.gideon300()
        assert c.state_check_ns < c.oal_log_ns
        assert c.oal_log_ns < c.gos_trap_ns * 10
        assert c.gos_trap_ns < c.migration_fixed_ns
        assert c.raw_capture_ns_per_slot < c.extract_ns_per_slot
        assert c.probe_ns_per_slot < c.extract_ns_per_slot

    def test_scaled_compute(self):
        c = CostModel(compute_scale=0.5)
        assert c.scaled_compute(1000) == 500

    def test_scaled_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().scaled_compute(-5)

    def test_with_overrides(self):
        c = CostModel().with_overrides(state_check_ns=99)
        assert c.state_check_ns == 99
        # Original untouched (frozen dataclass semantics).
        assert CostModel().state_check_ns != 99

    def test_fast_test_preserves_ratios(self):
        base = CostModel.gideon300()
        fast = CostModel.fast_test()
        assert fast.state_check_ns == base.state_check_ns
        assert fast.compute_scale < base.compute_scale


class TestCpuAccounting:
    def test_total_sums_all_buckets(self):
        cpu = CpuAccounting(compute_ns=10, access_ns=20, oal_logging_ns=5)
        cpu.extra["foo"] = 7
        assert cpu.total_ns == 42

    def test_profiling_subset(self):
        cpu = CpuAccounting(
            compute_ns=1000,
            oal_logging_ns=5,
            oal_packing_ns=3,
            stack_sampling_ns=2,
            footprinting_ns=1,
            resolution_ns=4,
            resampling_ns=6,
        )
        assert cpu.profiling_ns == 21
        assert cpu.total_ns == 1021

    def test_merge(self):
        a = CpuAccounting(compute_ns=10, network_wait_ns=5)
        a.extra["x"] = 1
        b = CpuAccounting(compute_ns=3, migration_ns=7)
        b.extra["x"] = 2
        b.extra["y"] = 4
        a.merge(b)
        assert a.compute_ns == 13
        assert a.migration_ns == 7
        assert a.network_wait_ns == 5
        assert a.extra == {"x": 3, "y": 4}
