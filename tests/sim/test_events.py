"""Tests for the discrete-event kernel and queued network delivery."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.events import EventKind, EventLoop
from repro.sim.network import Message, MessageKind, Network


class TestEventLoopOrdering:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.schedule(EventKind.SEGMENT_END, 30, actor=3)
        loop.schedule(EventKind.SEGMENT_END, 10, actor=1)
        loop.schedule(EventKind.SEGMENT_END, 20, actor=2)
        assert [loop.pop().actor for _ in range(3)] == [1, 2, 3]

    def test_equal_times_pop_in_schedule_order(self):
        """The (time_ns, seq) tie-break: producers that schedule several
        events at one instant get them back in scheduling order."""
        loop = EventLoop()
        for actor in (7, 5, 9):
            loop.schedule(EventKind.SEGMENT_END, 100, actor=actor)
        assert [loop.pop().actor for _ in range(3)] == [7, 5, 9]

    def test_now_ns_tracks_pops_monotonically(self):
        loop = EventLoop()
        loop.schedule(EventKind.TIMER_FIRE, 50)
        loop.schedule(EventKind.TIMER_FIRE, 10)
        loop.pop()
        assert loop.now_ns == 10
        loop.pop()
        assert loop.now_ns == 50

    def test_cancelled_events_are_skipped(self):
        loop = EventLoop()
        keep = loop.schedule(EventKind.SEGMENT_END, 1, actor=1)
        drop = loop.schedule(EventKind.SEGMENT_END, 0, actor=2)
        loop.cancel(drop)
        assert len(loop) == 1
        assert loop.pop() is keep
        assert loop.pop() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EventLoop().schedule(EventKind.SEGMENT_END, -1)

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        first = loop.schedule(EventKind.SEGMENT_END, 5)
        loop.schedule(EventKind.SEGMENT_END, 9)
        loop.cancel(first)
        assert loop.peek_time_ns() == 9

    def test_empty_loop_is_falsy(self):
        loop = EventLoop()
        assert not loop
        loop.schedule(EventKind.SEGMENT_END, 0)
        assert loop


class TestEventLoopTrace:
    def test_trace_records_dispatched_events(self):
        loop = EventLoop(keep_trace=True)
        loop.schedule(EventKind.BARRIER_RELEASE, 40, actor=0)
        loop.schedule(EventKind.SEGMENT_END, 15, actor=2)
        loop.run_until_idle()
        assert loop.trace == [(15, "SEGMENT_END", 2), (40, "BARRIER_RELEASE", 0)]

    def test_record_bypasses_heap(self):
        loop = EventLoop(keep_trace=True)
        loop.record(EventKind.TIMER_FIRE, 123, actor=4)
        assert len(loop) == 0
        assert loop.trace == [(123, "TIMER_FIRE", 4)]

    def test_trace_off_by_default(self):
        loop = EventLoop()
        loop.schedule(EventKind.SEGMENT_END, 1)
        loop.record(EventKind.TIMER_FIRE, 2)
        loop.run_until_idle()
        assert loop.trace == []

    def test_run_until_idle_dispatches_callbacks(self):
        loop = EventLoop()
        seen = []
        loop.schedule(
            EventKind.MESSAGE_DELIVER, 7, actor=1, callback=lambda e: seen.append(e.time_ns)
        )
        assert loop.run_until_idle() == 1
        assert seen == [7]


class TestNetworkQueueing:
    def net(self, **kw):
        return Network(
            latency_ns=1000, bandwidth_bytes_per_s=1e9, header_bytes=0, queueing=True, **kw
        )

    def test_concurrent_sends_on_one_link_serialize(self):
        """Two messages entering one directed link at the same instant
        FIFO-serialize: the second delivers no earlier than the first
        finishes serializing."""
        net = self.net()
        # 1000 bytes at 1 GB/s = 1000 ns serialization each.
        d1 = net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        d2 = net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        first_completion = 1000  # first message clears the link at t=1000
        assert d1 == 1000 + 1000  # serialization + latency
        assert d2 >= first_completion + 1000  # queued behind the first
        assert d2 == 2000 + 1000
        assert net.link_busy_until_ns(0, 1) == 2000

    def test_distinct_links_do_not_contend(self):
        net = self.net()
        d1 = net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        d2 = net.send(MessageKind.DIFF, 1, 0, 1000, 0)  # reverse direction
        assert d1 == d2

    def test_no_queueing_overlaps_for_free(self):
        net = Network(latency_ns=1000, bandwidth_bytes_per_s=1e9, header_bytes=0)
        d1 = net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        d2 = net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        assert d1 == d2

    def test_link_frees_up_over_time(self):
        net = self.net()
        net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        # A send after the link cleared pays no queueing delay.
        assert net.send(MessageKind.DIFF, 0, 1, 1000, 5000) == 2000

    def test_queued_send_schedules_message_deliver_event(self):
        net = self.net()
        kernel = EventLoop(keep_trace=True)
        net.attach_kernel(kernel)
        net.send(MessageKind.OAL, 2, 0, 1000, 0)
        event = next(kernel.pending())
        assert event.kind is EventKind.MESSAGE_DELIVER
        assert event.actor == 0
        assert event.time_ns == 2000
        assert event.data.kind is MessageKind.OAL

    def test_on_deliver_subscriber_invoked(self):
        net = self.net()
        kernel = EventLoop()
        net.attach_kernel(kernel)
        delivered = []
        net.on_deliver = delivered.append
        net.send(MessageKind.DIFF, 0, 1, 500, 0)
        kernel.run_until_idle()
        assert len(delivered) == 1
        assert delivered[0].src == 0 and delivered[0].dst == 1

    def test_reset_stats_clears_link_cursors(self):
        net = self.net()
        net.send(MessageKind.DIFF, 0, 1, 1000, 0)
        net.reset_stats()
        assert net.link_busy_until_ns(0, 1) == 0


class TestSendValidation:
    def test_endpoints_validated_against_bound_cluster(self):
        net = Network()
        net.bind_cluster(4)
        with pytest.raises(ValueError, match="outside the bound cluster"):
            net.send(MessageKind.DIFF, 0, 7, 100, 0)
        with pytest.raises(ValueError, match="outside the bound cluster"):
            net.send(MessageKind.DIFF, -1, 2, 100, 0)

    def test_cluster_binds_its_network(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError, match="outside the bound cluster"):
            cluster.network.send(MessageKind.LOCK, 0, 5, 32, 0)

    def test_unbound_network_accepts_any_ids(self):
        net = Network()
        assert net.send(MessageKind.DIFF, 0, 99, 100, 0) > 0

    def test_carrier_to_other_destination_rejected(self):
        net = Network()
        carrier = Message(MessageKind.BARRIER, 2, 1, 64, 0)
        with pytest.raises(ValueError, match="cannot piggyback"):
            net.send(MessageKind.OAL, 2, 0, 100, 0, piggyback_on=carrier)

    def test_carrier_from_other_source_rejected(self):
        net = Network()
        carrier = Message(MessageKind.BARRIER, 3, 0, 64, 0)
        with pytest.raises(ValueError, match="cannot piggyback"):
            net.send(MessageKind.OAL, 2, 0, 100, 0, piggyback_on=carrier)

    def test_matching_carrier_implies_piggyback(self):
        net = Network(latency_ns=1000, bandwidth_bytes_per_s=1e9, header_bytes=100)
        carrier = Message(MessageKind.BARRIER, 2, 0, 64, 0)
        cost = net.send(MessageKind.OAL, 2, 0, 500, 0, piggyback_on=carrier)
        assert cost == 500  # serialization only: no latency, no header
        assert net.stats.piggybacked_messages == 1
