"""Tests for the ingress-backlog model (bursty OAL traffic delaying
barrier releases at the master)."""

import pytest

from repro.core.profiler import ProfilerSuite
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import Network

from tests.conftest import simple_class, wrap_main


class TestNetworkBacklog:
    def test_accumulates_and_drains(self):
        net = Network()
        net.add_ingress_backlog(0, 100)
        net.add_ingress_backlog(0, 50)
        assert net.drain_ingress_backlog(0) == 150
        assert net.drain_ingress_backlog(0) == 0

    def test_per_node_isolation(self):
        net = Network()
        net.add_ingress_backlog(0, 100)
        assert net.drain_ingress_backlog(1) == 0
        assert net.drain_ingress_backlog(0) == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Network().add_ingress_backlog(0, -1)

    def test_reset_clears(self):
        net = Network()
        net.add_ingress_backlog(0, 100)
        net.reset_stats()
        assert net.drain_ingress_backlog(0) == 0


class TestBarrierDelay:
    def run_once(self, send_oals: bool) -> float:
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 64)
        objs = [djvm.allocate(cls, i % 2) for i in range(64)]
        djvm.spawn_thread(0)
        djvm.spawn_thread(1)
        suite = ProfilerSuite(djvm, correlation=True, send_oals=send_oals)
        suite.set_full_sampling()
        reads = [P.read(o.obj_id) for o in objs]
        res = djvm.run(
            {
                0: wrap_main(reads + [P.barrier(0)]),
                1: wrap_main(reads + [P.barrier(0)]),
            }
        )
        return res.execution_time_ms

    def test_oal_bursts_delay_barriers(self):
        """With OAL sends on, the remote worker's jumbo message queues at
        the master's NIC and the barrier release waits for it."""
        assert self.run_once(send_oals=True) > self.run_once(send_oals=False)

    def test_master_local_oals_add_no_backlog(self):
        """A single thread on the master sends nothing over the wire:
        no backlog may accumulate."""
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        cls = simple_class(djvm, "Obj", 64)
        obj = djvm.allocate(cls, 0)
        djvm.spawn_thread(0)
        suite = ProfilerSuite(djvm, correlation=True, send_oals=True)
        suite.set_full_sampling()
        djvm.run({0: wrap_main([P.read(obj.obj_id), P.barrier(0)])})
        assert djvm.cluster.network.drain_ingress_backlog(0) == 0
