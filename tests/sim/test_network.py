"""Tests for the interconnect model and traffic accounting."""

import pytest

from repro.sim.network import GOS_KINDS, Message, MessageKind, Network, TrafficStats


class TestTransferTime:
    def test_latency_plus_serialization(self):
        net = Network(latency_ns=1000, bandwidth_bytes_per_s=1e9, header_bytes=0)
        # 1000 bytes at 1 GB/s = 1000 ns serialization.
        assert net.transfer_time_ns(1000) == 2000

    def test_header_bytes_counted(self):
        net = Network(latency_ns=0, bandwidth_bytes_per_s=1e9, header_bytes=100)
        assert net.transfer_time_ns(0) == 100

    def test_piggyback_skips_latency_and_header(self):
        net = Network(latency_ns=1000, bandwidth_bytes_per_s=1e9, header_bytes=100)
        assert net.transfer_time_ns(500, piggybacked=True) == 500

    def test_monotone_in_size(self):
        net = Network()
        assert net.transfer_time_ns(10_000) > net.transfer_time_ns(100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Network().transfer_time_ns(-1)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            Network(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            Network(latency_ns=-5)


class TestSendAccounting:
    def test_local_messages_free_and_unrecorded(self):
        net = Network()
        assert net.send(MessageKind.DIFF, 1, 1, 4096, 0) == 0
        assert net.stats.messages == 0

    def test_remote_messages_recorded(self):
        net = Network()
        t = net.send(MessageKind.DIFF, 0, 1, 4096, 0)
        assert t > 0
        assert net.stats.messages == 1
        assert net.stats.bytes_by_kind[MessageKind.DIFF] == 4096

    def test_oal_vs_gos_split(self):
        net = Network()
        net.send(MessageKind.OBJECT_FETCH_DATA, 0, 1, 1000, 0)
        net.send(MessageKind.LOCK, 0, 1, 32, 0)
        net.send(MessageKind.OAL, 1, 0, 500, 0)
        assert net.stats.gos_bytes == 1032
        assert net.stats.oal_bytes == 500
        assert net.stats.total_bytes == 1532

    def test_oal_not_in_gos_kinds(self):
        assert MessageKind.OAL not in GOS_KINDS
        assert MessageKind.OAL.is_profiling

    def test_piggyback_counted(self):
        net = Network()
        net.send(MessageKind.OAL, 0, 1, 100, 0, piggybacked=True)
        assert net.stats.piggybacked_messages == 1

    def test_round_trip(self):
        net = Network(latency_ns=100, bandwidth_bytes_per_s=1e9, header_bytes=0)
        assert net.round_trip_ns(100, 900) == 100 + 100 + 100 + 900

    def test_reset_stats(self):
        net = Network()
        net.send(MessageKind.DIFF, 0, 1, 10, 0)
        net.reset_stats()
        assert net.stats.messages == 0

    def test_log_kept_only_when_enabled(self):
        net = Network()
        net.send(MessageKind.DIFF, 0, 1, 10, 0)
        assert net.log == []
        net.keep_log = True
        net.send(MessageKind.DIFF, 0, 1, 10, 5)
        assert len(net.log) == 1
        assert net.log[0].time_ns == 5


class TestTrafficStats:
    def test_bytes_for_multiple_kinds(self):
        stats = TrafficStats()
        stats.record(Message(MessageKind.DIFF, 0, 1, 10, 0))
        stats.record(Message(MessageKind.LOCK, 0, 1, 20, 0))
        assert stats.bytes_for(MessageKind.DIFF, MessageKind.LOCK) == 30
        assert stats.count_by_kind[MessageKind.DIFF] == 1
