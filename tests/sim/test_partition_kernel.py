"""Conservative partitioned event kernel (PDES stage 1).

Three layers of guarantees:

* **Byte-identity** — the partitioned kernel (with vectorized replay)
  must reproduce the serial oracle's simulation exactly: counters,
  clocks, traffic, and the full per-interval access history, on every
  paper workload, at 2 and 4 partitions.
* **LBTS / lookahead edge cases** — a cross-partition delivery landing
  *exactly* on the lookahead bound is safe; one landing under it (the
  zero-latency piggybacked payload) is a counted violation.
* **Accounting sanity** — window, skew and frontier statistics behave.
"""

from __future__ import annotations

import pytest

from repro.runtime import program
from repro.runtime.djvm import DJVM
from repro.sim.events import EventKind, EventLoop
from repro.sim.network import Message, MessageKind
from repro.sim.partition import NodeGroupPartitioner, PartitionedEventLoop
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.sor import SORWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload

# ---------------------------------------------------------------------------
# byte-identity with the serial oracle
# ---------------------------------------------------------------------------

N_NODES = 4

WORKLOADS = {
    "sor": lambda: SORWorkload(n=128, rounds=2, n_threads=N_NODES, seed=3),
    "barnes_hut": lambda: BarnesHutWorkload(
        n_bodies=96, rounds=2, n_threads=N_NODES, seed=3
    ),
    "water_spatial": lambda: WaterSpatialWorkload(
        n_molecules=64, rounds=2, n_threads=N_NODES, seed=3
    ),
}


def fingerprint(djvm: DJVM, res) -> dict:
    """Every observable the simulation produced, including the full
    interval history (so access summaries — order included — must match,
    not just the aggregate counters)."""
    history = {}
    for tid, intervals in sorted(djvm.hlrc.interval_history.items()):
        history[tid] = [
            (
                iv.interval_id,
                iv.start_pc,
                iv.end_pc,
                iv.start_ns,
                iv.end_ns,
                iv.close_reason,
                tuple(
                    (s.obj_id, s.reads, s.writes, s.first_ns, s.last_ns)
                    for s in iv.accesses.values()
                ),
                tuple(sorted(iv.written)),
            )
            for iv in intervals
        ]
    return {
        "counters": dict(sorted(res.counters.items())),
        "finish_ms": dict(sorted(res.thread_finish_ms.items())),
        "ops": res.ops_executed,
        "messages": res.traffic.messages,
        "by_kind": sorted(
            (str(k), tuple(v)) for k, v in res.traffic._by_kind.items()
        ),
        "history": history,
    }


def run_mode(name: str, **kwargs) -> dict:
    djvm = DJVM(N_NODES, keep_interval_history=True, **kwargs)
    workload = WORKLOADS[name]()
    workload.build(djvm)
    progs = {
        tid: program.compile_program(ops)
        for tid, ops in workload.programs().items()
    }
    if kwargs.get("replay", djvm.replay) == "vector":
        # One-shot programs would otherwise warm up scalar everywhere;
        # pre-marking runs hot forces the engine through the bulk path.
        for cp in progs.values():
            for vr in cp.vector_runs().values():
                vr.hot = True
    return fingerprint(djvm, djvm.run(progs))


_serial_cache: dict[str, dict] = {}


def serial_oracle(name: str) -> dict:
    if name not in _serial_cache:
        _serial_cache[name] = run_mode(name, kernel="serial", replay="scalar")
    return _serial_cache[name]


@pytest.mark.parametrize("partitions", [2, 4])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_partitioned_kernel_matches_serial_oracle(name, partitions):
    parallel = run_mode(name, kernel="partitioned", partitions=partitions)
    assert parallel == serial_oracle(name)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_vector_replay_matches_scalar_on_workloads(name):
    """Vectorized replay alone (serial kernel) is also byte-identical."""
    assert run_mode(name, replay="vector") == serial_oracle(name)


def test_partitioned_run_reports_stats():
    djvm = DJVM(N_NODES, kernel="partitioned", partitions=2)
    workload = WORKLOADS["sor"]()
    workload.build(djvm)
    djvm.run(workload.programs())
    stats = djvm.kernel_stats
    assert stats["partitions"] == 2
    assert stats["windows"] > 0
    assert stats["cross_messages"] > 0
    assert stats["frontier_syncs"] > 0
    assert stats["lookahead_ns"] == djvm.cluster.network.min_latency_ns


def test_serial_kernel_has_no_partition_stats():
    djvm = DJVM(2)
    assert djvm.kernel_stats is None


# ---------------------------------------------------------------------------
# pop order: identical to the serial kernel by construction
# ---------------------------------------------------------------------------


def make_loop(
    n_nodes: int = 4, partitions: int = 2, lookahead: int = 100
) -> PartitionedEventLoop:
    part = NodeGroupPartitioner(
        n_nodes, partitions, node_of_thread=lambda tid: tid % n_nodes
    )
    return PartitionedEventLoop(part, lookahead_ns=lookahead)


def test_global_pop_order_matches_serial_kernel():
    serial = EventLoop()
    parallel = make_loop()
    # Interleave actors across partitions with ties on time.
    plan = [
        (EventKind.SEGMENT_END, 30, 3),
        (EventKind.SEGMENT_END, 10, 0),
        (EventKind.SEGMENT_END, 10, 2),
        (EventKind.TIMER_FIRE, 5, 1),
        (EventKind.SEGMENT_END, 30, 0),
        (EventKind.MIGRATION_CHECK, 10, 3),
    ]
    for kind, t, actor in plan:
        serial.schedule(kind, t, actor=actor)
        parallel.schedule(kind, t, actor=actor)
    expect = [(e.time_ns, e.seq, e.kind, e.actor) for e in iter(serial.pop, None)]
    got = [(e.time_ns, e.seq, e.kind, e.actor) for e in iter(parallel.pop, None)]
    assert got == expect


def test_cancelled_head_skipped_and_frontier_recovers():
    loop = make_loop()
    first = loop.schedule(EventKind.SEGMENT_END, 5, actor=0)
    second = loop.schedule(EventKind.SEGMENT_END, 9, actor=0)
    other = loop.schedule(EventKind.SEGMENT_END, 7, actor=3)
    loop.cancel(first)
    assert len(loop) == 2
    assert loop.pop() is other
    assert loop.pop() is second
    assert loop.pop() is None


def test_peek_time_spans_partitions():
    loop = make_loop()
    loop.schedule(EventKind.SEGMENT_END, 40, actor=0)
    loop.schedule(EventKind.SEGMENT_END, 15, actor=3)
    assert loop.peek_time_ns() == 15


# ---------------------------------------------------------------------------
# LBTS / lookahead boundary cases
# ---------------------------------------------------------------------------


def deliver(dst: int, time_ns: int, *, src: int = 0, piggybacked: bool = False):
    """A MESSAGE_DELIVER payload as the network schedules them."""
    return Message(
        kind=MessageKind.OBJECT_FETCH_DATA,
        src=src,
        dst=dst,
        size_bytes=0 if piggybacked else 64,
        time_ns=time_ns,
        piggybacked=piggybacked,
    )


def test_delivery_exactly_on_lookahead_bound_is_safe():
    """A message landing exactly at ``now + lookahead`` is the earliest
    arrival conservative lookahead promises — not a violation."""
    loop = make_loop(lookahead=100)

    def cb(event):
        t = loop.now_ns + 100
        loop.schedule(
            EventKind.MESSAGE_DELIVER, t, actor=3, data=deliver(3, t)
        )

    loop.schedule(EventKind.SEGMENT_END, 10, actor=0, callback=cb)
    loop.drain()
    assert loop.cross_messages == 1
    assert loop.lookahead_violations == 0


def test_zero_payload_piggyback_under_lookahead_is_violation():
    """A zero-latency piggybacked payload crossing partitions lands under
    the lookahead bound — counted as the sync a stage-2 kernel must add."""
    loop = make_loop(lookahead=100)

    def cb(event):
        t = loop.now_ns  # rides a carrier: no latency of its own
        loop.schedule(
            EventKind.MESSAGE_DELIVER,
            t,
            actor=3,
            data=deliver(3, t, piggybacked=True),
        )

    loop.schedule(EventKind.SEGMENT_END, 10, actor=0, callback=cb)
    loop.drain()
    assert loop.cross_messages == 1
    assert loop.lookahead_violations == 1


def test_intra_partition_delivery_not_counted_as_cross():
    loop = make_loop(lookahead=100)

    def cb(event):
        t = loop.now_ns + 100
        # src node 0 and dst node 1 share partition 0 of 2.
        loop.schedule(
            EventKind.MESSAGE_DELIVER, t, actor=1, data=deliver(1, t, src=0)
        )

    loop.schedule(EventKind.SEGMENT_END, 10, actor=0, callback=cb)
    loop.drain()
    assert loop.cross_messages == 0
    assert loop.intra_messages == 1
    assert loop.lookahead_violations == 0


def test_schedule_outside_drain_has_no_origin():
    """Root events (workload injection, run setup) have no origin
    partition and are neither cross nor intra messages."""
    loop = make_loop()
    loop.schedule(EventKind.SEGMENT_END, 10, actor=0)
    loop.schedule(EventKind.SEGMENT_END, 10, actor=3)
    assert loop.cross_messages == 0
    assert loop.intra_messages == 0


# ---------------------------------------------------------------------------
# window accounting and partitioner routing
# ---------------------------------------------------------------------------


def test_window_and_skew_accounting():
    loop = make_loop(lookahead=100)
    # Window 1: both partitions busy at the floor.
    loop.schedule(EventKind.SEGMENT_END, 0, actor=0)
    loop.schedule(EventKind.SEGMENT_END, 50, actor=3)
    # Window 2: only partition 0 busy; partition 1 idles (null slot).
    loop.schedule(EventKind.SEGMENT_END, 500, actor=0)
    loop.drain()
    stats = loop.stats()
    assert stats["windows"] == 2
    assert stats["max_window_events"] == 2
    assert stats["null_window_slots"] >= 1
    assert stats["max_skew_ns"] >= 50


def test_partitioner_routes_barrier_release_to_master():
    part = NodeGroupPartitioner(
        4, 2, node_of_thread=lambda tid: 3, master_node=0
    )
    assert part.of_event(EventKind.BARRIER_RELEASE, actor=7) == 0
    # Thread actors follow the thread's *current* node.
    assert part.of_event(EventKind.SEGMENT_END, actor=5) == part.of_node(3)
    assert part.of_event(EventKind.MESSAGE_DELIVER, actor=2) == part.of_node(2)


def test_partitioner_rejects_bad_partition_count():
    with pytest.raises(ValueError, match="partitions"):
        NodeGroupPartitioner(2, 3, node_of_thread=lambda tid: 0)


def test_negative_lookahead_rejected():
    part = NodeGroupPartitioner(2, 2, node_of_thread=lambda tid: 0)
    with pytest.raises(ValueError, match="lookahead"):
        PartitionedEventLoop(part, lookahead_ns=-1)
