"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main, make_workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sor"])
        assert args.workload == "sor"
        assert args.nodes == 8
        assert args.rate == "4"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])


class TestMakeWorkload:
    @pytest.mark.parametrize("name", ["sor", "barnes-hut", "water-spatial", "fft", "group-sharing"])
    def test_all_names_construct(self, name):
        wl = make_workload(name, n_threads=4, seed=1)
        assert wl.n_threads == 4

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            make_workload("bogus", 4, 0)


class TestCommands:
    def test_experiments_lists_every_bench(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_fig9_accuracy.py" in out
        assert "bench_table5_ss_overhead.py" in out
        assert "REPRO_PAPER_SCALE" in out

    def test_run_group_sharing(self, capsys):
        code = main(
            ["run", "group-sharing", "--nodes", "2", "--threads", "4", "--rate", "full"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GroupSharing" in out
        assert "thread correlation map" in out

    def test_run_without_correlation(self, capsys):
        code = main(
            ["run", "group-sharing", "--nodes", "2", "--threads", "4", "--no-correlation"]
        )
        assert code == 0
        assert "correlation map" not in capsys.readouterr().out

    def test_run_with_sticky(self, capsys):
        code = main(
            ["run", "group-sharing", "--nodes", "2", "--threads", "4", "--sticky"]
        )
        assert code == 0
