"""Public-API surface guard: everything exported is importable,
documented, and the advertised quickstart flows type-check at runtime."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.heap",
    "repro.dsm",
    "repro.runtime",
    "repro.core",
    "repro.placement",
    "repro.workloads",
    "repro.analysis",
    "repro.util",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            assert obj is not None, f"{module_name}.{name} missing"
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_version_consistent(self):
        import tomllib

        with open("pyproject.toml", "rb") as fh:
            meta = tomllib.load(fh)
        assert repro.__version__ == meta["project"]["version"]


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart, verbatim in miniature."""
        from repro import DJVM, ProfilerSuite
        from repro.workloads import BarnesHutWorkload

        workload = BarnesHutWorkload(n_bodies=128, rounds=1, n_threads=4)
        djvm = DJVM(n_nodes=4)
        workload.build(djvm)
        suite = ProfilerSuite(djvm, correlation=True, stack=True, footprint=True)
        suite.set_rate_all(4)
        result = djvm.run(workload.programs())
        assert "execution" in result.summary()
        assert suite.tcm().shape == (4, 4)
