"""Tests for prime selection (paper Section II.B.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.primes import is_prime, nearest_prime, prime_gap_for_nominal


class TestIsPrime:
    def test_small_values(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        for n in range(32):
            assert is_prime(n) == (n in primes), n

    def test_negative_and_zero(self):
        assert not is_prime(0)
        assert not is_prime(1)
        assert not is_prime(-7)

    def test_large_prime(self):
        assert is_prime(104729)  # the 10000th prime

    def test_large_composite(self):
        assert not is_prime(104729 * 3)

    @given(st.integers(min_value=2, max_value=5000))
    def test_agrees_with_trial_division(self, n):
        naive = n >= 2 and all(n % d for d in range(2, n))
        assert is_prime(n) == naive


class TestNearestPrime:
    def test_prime_maps_to_itself(self):
        for p in (2, 3, 31, 127, 8191):
            assert nearest_prime(p) == p

    def test_small_inputs_map_to_two(self):
        assert nearest_prime(0) == 2
        assert nearest_prime(1) == 2
        assert nearest_prime(2) == 2

    @given(st.integers(min_value=2, max_value=100_000))
    def test_result_is_prime_and_nearest(self, n):
        p = nearest_prime(n)
        assert is_prime(p)
        # No prime strictly closer.
        for q in range(n - abs(n - p) + 1, n + abs(n - p)):
            if q >= 2 and q != p:
                assert not is_prime(q) or abs(q - n) >= abs(p - n)


class TestPrimeGapForNominal:
    def test_paper_examples(self):
        """The paper quotes 31, 67, 127 for nominals 32, 64, 128."""
        assert prime_gap_for_nominal(32) == 31
        assert prime_gap_for_nominal(64) == 67
        assert prime_gap_for_nominal(128) == 127

    def test_full_sampling_preserved(self):
        assert prime_gap_for_nominal(1) == 1

    def test_prime_nominal_kept(self):
        assert prime_gap_for_nominal(31) == 31
        assert prime_gap_for_nominal(2) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_gap_for_nominal(0)
        with pytest.raises(ValueError):
            prime_gap_for_nominal(-4)

    @given(st.integers(min_value=2, max_value=65536))
    def test_always_prime(self, nominal):
        assert is_prime(prime_gap_for_nominal(nominal))

    @given(st.integers(min_value=2, max_value=65536))
    def test_close_to_nominal(self, nominal):
        """The prime gap never drifts far from the nominal (prime gaps
        are dense enough below 2^16 that the distance stays tiny
        relative to the nominal)."""
        gap = prime_gap_for_nominal(nominal)
        assert abs(gap - nominal) <= max(8, nominal // 4)
