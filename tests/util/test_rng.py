"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.util.rng import seeded_rng, split_rng


class TestSeededRng:
    def test_deterministic(self):
        a = seeded_rng(7, "x").integers(0, 1 << 30, 10)
        b = seeded_rng(7, "x").integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_labels_decorrelate(self):
        a = seeded_rng(7, "x").integers(0, 1 << 30, 10)
        b = seeded_rng(7, "y").integers(0, 1 << 30, 10)
        assert not (a == b).all()

    def test_seed_changes_stream(self):
        a = seeded_rng(7, "x").integers(0, 1 << 30, 10)
        b = seeded_rng(8, "x").integers(0, 1 << 30, 10)
        assert not (a == b).all()

    def test_nested_labels(self):
        a = seeded_rng(7, "a", "b").integers(0, 1 << 30, 5)
        b = seeded_rng(7, "a", "c").integers(0, 1 << 30, 5)
        assert not (a == b).all()

    def test_none_seed_is_zero(self):
        a = seeded_rng(None, "x").integers(0, 1 << 30, 5)
        b = seeded_rng(0, "x").integers(0, 1 << 30, 5)
        assert (a == b).all()


class TestSplitRng:
    def test_children_independent(self):
        children = split_rng(np.random.default_rng(1), 3)
        draws = [c.integers(0, 1 << 30, 8) for c in children]
        assert not (draws[0] == draws[1]).all()
        assert not (draws[1] == draws[2]).all()

    def test_count(self):
        assert len(split_rng(np.random.default_rng(1), 5)) == 5
        assert split_rng(np.random.default_rng(1), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            split_rng(np.random.default_rng(1), -1)

    def test_deterministic_given_parent_state(self):
        a = split_rng(np.random.default_rng(42), 2)
        b = split_rng(np.random.default_rng(42), 2)
        assert (a[0].integers(0, 100, 5) == b[0].integers(0, 100, 5)).all()
