"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import check_in_range, check_non_negative, check_positive


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(1, "x")
        check_positive(0.001, "x")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(0, "x")
        with pytest.raises(ValueError):
            check_positive(-3, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative(-1, "x")


class TestCheckInRange:
    def test_accepts_bounds(self):
        check_in_range(0, 0, 1, "x")
        check_in_range(1, 0, 1, "x")

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, 0, 1, "x")
        with pytest.raises(ValueError):
            check_in_range(-0.5, 0, 1, "x")

    def test_message_names_argument(self):
        with pytest.raises(ValueError, match="threshold"):
            check_in_range(2, 0, 1, "threshold")
