"""Tests for the Barnes-Hut workload."""

import numpy as np
import pytest

from repro.analysis.heatmap import block_contrast
from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import BarnesHutWorkload


def build(n_bodies=256, rounds=2, n_threads=4, n_nodes=4, **kw):
    wl = BarnesHutWorkload(n_bodies=n_bodies, rounds=rounds, n_threads=n_threads, **kw)
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    wl.build(djvm)
    return wl, djvm


class TestGalaxies:
    def test_two_equal_galaxies(self):
        wl, _ = build()
        assert (wl.galaxy_of == 0).sum() == 128
        assert (wl.galaxy_of == 1).sum() == 128

    def test_costzone_order_groups_galaxies(self):
        """After (galaxy, Morton) ordering, each thread's chunk is within
        one galaxy (for thread counts dividing the galaxy split)."""
        wl, _ = build(n_bodies=256, n_threads=4)
        for t in range(4):
            chunk = wl.galaxy_of[list(wl.bodies_of(t))]
            assert len(set(chunk.tolist())) == 1

    def test_bodies_have_vectors(self):
        wl, djvm = build()
        body = djvm.gos.get(wl.body_ids[0])
        assert body.jclass.name == "Body"
        assert len(body.refs) == 3
        for v in body.refs:
            assert djvm.gos.get(v).jclass.name == "Vect3"


class TestOctree:
    def test_tree_allocated_per_round(self):
        wl, djvm = build(rounds=3)
        roots = [plan[0] for plan in wl._round_plans]
        assert len(set(roots)) == 3  # fresh tree each round

    def test_leaf_capacity_respected(self):
        wl = BarnesHutWorkload(n_bodies=128, rounds=1, n_threads=4, leaf_capacity=4)
        pos, _, _ = wl._generate_galaxies()
        root = wl._build_tree(pos)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.bodies) <= 4
            else:
                stack.extend(node.children)

    def test_traversal_visits_fewer_with_larger_theta(self):
        wl = BarnesHutWorkload(n_bodies=256, rounds=1, n_threads=4, theta=0.3)
        pos, _, _ = wl._generate_galaxies()
        root = wl._build_tree(pos)
        tight, _ = wl._traverse(root, pos, 0)
        wl.theta = 1.2
        loose, _ = wl._traverse(root, pos, 0)
        assert len(loose) < len(tight)

    def test_traversal_covers_all_partners_at_tiny_theta(self):
        """With theta -> 0 every other body is an interaction partner
        (the traversal degenerates to all-pairs)."""
        wl = BarnesHutWorkload(n_bodies=64, rounds=1, n_threads=4, theta=1e-6)
        pos, _, _ = wl._generate_galaxies()
        root = wl._build_tree(pos)
        _, partners = wl._traverse(root, pos, 0)
        assert sorted(partners) == [i for i in range(64) if i != 0]


class TestSharingProfile:
    def test_intra_galaxy_dominates(self):
        wl, djvm = build(n_bodies=256, n_threads=8, n_nodes=4)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        tcm = suite.tcm()
        groups = [0 if wl.galaxy_of[list(wl.bodies_of(t))[0]] == 0 else 1 for t in range(8)]
        assert block_contrast(tcm, groups) > 1.5

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            BarnesHutWorkload(n_bodies=2, n_threads=4)
        with pytest.raises(ValueError):
            BarnesHutWorkload(theta=0)
        with pytest.raises(ValueError):
            BarnesHutWorkload(leaf_capacity=0)

    def test_runs_to_completion(self):
        wl, djvm = build()
        res = djvm.run(wl.programs())
        assert res.counters["intervals"] > 0
        # 3 barrier episodes per round x 2 rounds.
        assert len(djvm.hlrc.sync.barriers) == 6


class TestVectorizedPlanner:
    def test_plan_round_matches_reference(self):
        """The vectorized planner must reproduce the per-body reference
        traversal exactly — same per-thread counts AND the same Counter
        insertion order (which fixes the op stream _generate emits)."""
        wl, _ = build(n_bodies=128, rounds=3, n_threads=4, n_nodes=4)
        # Reconstruct the same (galaxy, Morton)-ordered state build() used.
        pos, vel, labels = wl._generate_galaxies()
        order = np.lexsort((wl._morton_order(pos).argsort(), labels))
        pos, vel = pos[order], vel[order]
        for _round in range(wl.rounds):
            root = wl._build_tree(pos)
            # Stand in for _allocate_tree: give every node a distinct id
            # (DFS order) so the Counters key on real, unique objects.
            next_id = 10_000_000
            stack = [root]
            while stack:
                node = stack.pop()
                node.obj_id = next_id
                next_id += 1
                if node.is_leaf and node.bodies:
                    node.arr_id = next_id
                    next_id += 1
                stack.extend(node.children)
            fast = wl._plan_round(root, pos)
            ref = wl._plan_round_reference(root, pos)
            assert len(fast) == len(ref) == wl.n_threads
            for t in range(wl.n_threads):
                assert list(fast[t].items()) == list(ref[t].items())
            pos = pos + vel * wl.dt
