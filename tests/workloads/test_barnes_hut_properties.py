"""Property-based tests on the Barnes-Hut octree and ordering internals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.barnes_hut import BarnesHutWorkload


def workload(n_bodies=64, **kw):
    return BarnesHutWorkload(n_bodies=n_bodies, rounds=1, n_threads=4, **kw)


positions = st.integers(min_value=0, max_value=2**31 - 1).map(
    lambda seed: np.random.default_rng(seed).uniform(-3, 3, size=(48, 3))
)


class TestOctreeProperties:
    @given(positions)
    @settings(max_examples=25, deadline=None)
    def test_every_body_in_exactly_one_leaf(self, pos):
        wl = workload(n_bodies=len(pos))
        root = wl._build_tree(pos)
        seen: list[int] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.bodies)
            else:
                assert node.bodies == []  # internal nodes hold no bodies
                stack.extend(node.children)
        assert sorted(seen) == list(range(len(pos)))

    @given(positions)
    @settings(max_examples=25, deadline=None)
    def test_children_inside_parent_bounds(self, pos):
        wl = workload(n_bodies=len(pos))
        root = wl._build_tree(pos)
        stack = [root]
        while stack:
            node = stack.pop()
            for child in node.children:
                for axis in range(3):
                    assert (
                        abs(child.center[axis] - node.center[axis])
                        <= node.half + 1e-9
                    )
                assert child.half <= node.half / 2 + 1e-9
                stack.append(child)

    @given(positions)
    @settings(max_examples=25, deadline=None)
    def test_bodies_inside_root_bounds(self, pos):
        wl = workload(n_bodies=len(pos))
        root = wl._build_tree(pos)
        for axis in range(3):
            assert (pos[:, axis] >= root.center[axis] - root.half - 1e-6).all()
            assert (pos[:, axis] <= root.center[axis] + root.half + 1e-6).all()

    @given(positions, st.integers(min_value=0, max_value=47))
    @settings(max_examples=25, deadline=None)
    def test_traversal_partners_unique_and_exclude_self(self, pos, body):
        wl = workload(n_bodies=len(pos))
        root = wl._build_tree(pos)
        _visited, partners = wl._traverse(root, pos, body)
        assert body not in partners
        assert len(partners) == len(set(partners))


class TestMortonOrdering:
    @given(positions)
    @settings(max_examples=25, deadline=None)
    def test_is_a_permutation(self, pos):
        order = BarnesHutWorkload._morton_order(pos)
        assert sorted(order.tolist()) == list(range(len(pos)))

    def test_spatial_locality_of_consecutive_points(self):
        """Consecutive points in Morton order are, on average, much
        closer than random pairs — the property that makes contiguous
        chunks spatially compact (costzone-like)."""
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 1, size=(512, 3))
        order = BarnesHutWorkload._morton_order(pos)
        ordered = pos[order]
        consecutive = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        shuffled = pos[rng.permutation(512)]
        random_pairs = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
        assert consecutive < 0.5 * random_pairs
