"""Tests for the FFT extension workload (all-to-all sharing topology)."""

import numpy as np
import pytest

from repro.core.costmodel import MigrationCostModel
from repro.core.profiler import ProfilerSuite
from repro.placement.balancer import CorrelationAwareBalancer
from repro.runtime.djvm import DJVM
from repro.runtime.program import validate_program
from repro.sim.costs import CostModel
from repro.workloads import FFTWorkload


def build(n_points=1024, rounds=2, n_threads=4, n_nodes=4):
    wl = FFTWorkload(n_points=n_points, rounds=rounds, n_threads=n_threads)
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    wl.build(djvm)
    return wl, djvm


class TestStructure:
    def test_square_required(self):
        with pytest.raises(ValueError, match="perfect square"):
            FFTWorkload(n_points=1000)

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            FFTWorkload(n_points=16, n_threads=8)

    def test_two_matrices_allocated(self):
        wl, djvm = build()
        assert len(wl.row_ids) == wl.side
        assert len(wl.trans_ids) == wl.side
        row = djvm.gos.get(wl.row_ids[0])
        assert row.size_bytes >= 16 * wl.side

    def test_rows_homed_with_owners(self):
        wl, djvm = build()
        for t in range(4):
            node = wl.node_of(t)
            for r in wl.rows_of(t):
                assert djvm.gos.get(wl.row_ids[r]).home_node == node
                assert djvm.gos.get(wl.trans_ids[r]).home_node == node

    def test_programs_valid(self):
        wl, djvm = build()
        for t in range(4):
            assert validate_program(list(wl.program(t))) == []

    def test_spec(self):
        spec = FFTWorkload(n_points=65536).spec()
        assert spec.name == "FFT"
        assert "all-to-all" in spec.granularity


class TestSharingTopology:
    def test_tcm_is_flat(self):
        """The all-to-all transpose yields a flat correlation map — every
        off-diagonal pair within ~20% of the mean."""
        wl, djvm = build(n_points=4096, rounds=2, n_threads=4)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        tcm = suite.tcm()
        off = tcm[~np.eye(4, dtype=bool)]
        assert off.min() > 0
        assert off.max() / off.min() < 1.6

    def test_true_tcm_flat(self):
        wl = FFTWorkload(n_points=4096, n_threads=4)
        truth = wl.true_tcm()
        off = truth[~np.eye(4, dtype=bool)]
        assert (off == off[0]).all()

    def test_all_balanced_placements_equivalent(self):
        """The placement negative control: on a flat map every *balanced*
        assignment has identical quality — there is no wrong balanced
        placement to fix (the only 'gain' available is consolidation,
        i.e. packing more threads per node, which trades off against
        load, not against a smarter permutation)."""
        from repro.placement.partition import greedy_partition, partition_quality

        wl, djvm = build(n_points=4096, rounds=2, n_threads=8, n_nodes=4)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_rate_all(4)
        djvm.run(wl.programs())
        tcm = suite.tcm()
        block = [0, 0, 1, 1, 2, 2, 3, 3]
        permuted = [0, 1, 2, 3, 3, 2, 1, 0]
        q_block = partition_quality(tcm, block)
        q_perm = partition_quality(tcm, permuted)
        assert q_block["local_bytes"] == pytest.approx(
            q_perm["local_bytes"], rel=0.05
        )
        # The partitioner cannot beat an arbitrary balanced placement.
        derived = greedy_partition(tcm, 4)
        q_derived = partition_quality(tcm, derived)
        assert q_derived["local_fraction"] <= q_block["local_fraction"] + 0.05

    def test_balancer_only_proposes_consolidation(self):
        """On a flat map the balancer's proposals (if any) can only be
        consolidation moves — the gain of every proposal equals (extra
        partners gained - partners left behind) x the uniform pair volume."""
        wl, djvm = build(n_points=4096, rounds=2, n_threads=8, n_nodes=4)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_rate_all(4)
        djvm.run(wl.programs())
        tcm = suite.tcm()
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs),
            horizon_intervals=10,
        )
        placement = {t.thread_id: t.node_id for t in djvm.threads}
        pair_volume = tcm[0, 1]
        for prop in balancer.propose(tcm, placement, 4):
            gained_partners = round(
                prop.gain_ns
                * djvm.cluster.network.bandwidth_bytes_per_s
                / 1e9
                / 10  # horizon
                / pair_volume
            )
            assert gained_partners >= 1  # strictly packs threads together

    def test_transpose_generates_all_to_all_faults(self):
        wl, djvm = build(n_points=4096, rounds=1, n_threads=4)
        res = djvm.run(wl.programs())
        # Every thread must fault rows of every other thread at least once.
        assert res.counters["faults"] >= 3 * wl.side // 4
