"""Tests for the SOR workload."""

import pytest

from repro.analysis import experiments as E
from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import SORWorkload


def build(n=64, rounds=2, n_threads=4, n_nodes=4):
    wl = SORWorkload(n=n, rounds=rounds, n_threads=n_threads)
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    wl.build(djvm)
    return wl, djvm


class TestStructure:
    def test_row_objects_match_matrix(self):
        wl, djvm = build(n=64)
        assert len(wl.row_ids) == 64
        row = djvm.gos.get(wl.row_ids[0])
        assert row.is_array
        assert row.size_bytes >= 64 * 8

    def test_rows_homed_with_owners(self):
        wl, djvm = build(n=64, n_threads=4, n_nodes=4)
        for t in range(4):
            node = wl.node_of(t)
            for r in wl.rows_of(t):
                assert djvm.gos.get(wl.row_ids[r]).home_node == node

    def test_matrix_references_all_rows(self):
        wl, djvm = build()
        matrix = djvm.gos.get(wl.matrix_id)
        assert matrix.refs == wl.row_ids

    def test_row_partition_covers_disjointly(self):
        wl, _ = build(n=64, n_threads=4)
        seen = []
        for t in range(4):
            seen.extend(wl.rows_of(t))
        assert sorted(seen) == list(range(64))

    def test_spec(self):
        spec = SORWorkload(n=2048, rounds=10, n_threads=8).spec()
        assert spec.name == "SOR"
        assert spec.granularity == "Coarse"

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            SORWorkload(n=4, n_threads=8)


class TestExecution:
    def test_runs_to_completion(self):
        wl, djvm = build()
        res = djvm.run(wl.programs())
        assert res.execution_time_ms > 0
        # 2 rounds x 2 phases = 4 barrier episodes.
        assert djvm.hlrc.sync.barriers[0].episodes == 1
        assert len(djvm.hlrc.sync.barriers) == 4

    def test_tridiagonal_sharing_profile(self):
        """Threads share only with block neighbours — the TCM must be
        (block-)tridiagonal."""
        wl = SORWorkload(n=64, rounds=2, n_threads=4)
        djvm = DJVM(n_nodes=4, costs=CostModel.fast_test())
        wl.build(djvm)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        tcm = suite.tcm()
        # Every thread reads the matrix spine (the double[][] of row
        # references) once at startup, which puts a small uniform floor
        # under every pair; row sharing exists only between neighbours.
        spine = suite.djvm.gos.get(wl.matrix_id)
        floor = spine.length * spine.jclass.element_size
        for i in range(4):
            for j in range(4):
                if abs(i - j) == 1:
                    assert tcm[i, j] > floor, (i, j)
                elif i != j:
                    assert tcm[i, j] <= floor, (i, j)

    def test_boundary_faults_only(self):
        """Remote faults touch only neighbours' boundary rows."""
        wl, djvm = build(n=64, n_threads=4, n_nodes=4)
        res = djvm.run(wl.programs())
        # Each of the 3 thread boundaries faults 2 rows (one per side),
        # re-faulted per phase after invalidation; bounded well below a
        # full-matrix fetch.
        assert 0 < res.counters["faults"] < 64
