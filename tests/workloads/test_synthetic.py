"""Tests for synthetic workloads and their ground truth."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import GroupSharingWorkload, UniformSharingWorkload


class TestGroupSharing:
    def test_group_size_must_divide(self):
        with pytest.raises(ValueError):
            GroupSharingWorkload(n_threads=6, group_size=4)

    def test_true_tcm_block_structure(self):
        wl = GroupSharingWorkload(n_threads=4, group_size=2, objects_per_group=10, object_size=100)
        tcm = wl.true_tcm()
        assert tcm[0, 1] == 1000
        assert tcm[0, 2] == 0
        assert np.allclose(tcm, tcm.T)

    def test_global_pool_adds_floor(self):
        wl = GroupSharingWorkload(
            n_threads=4, group_size=2, objects_per_group=10, global_objects=5, object_size=100
        )
        assert wl.true_tcm()[0, 2] == 500

    def test_profiled_tcm_matches_truth_at_full_sampling(self):
        wl = GroupSharingWorkload(n_threads=8, group_size=2, rounds=2)
        djvm = DJVM(n_nodes=4, costs=CostModel.fast_test())
        wl.build(djvm)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        measured = suite.tcm()
        # Group objects are read every round and logged once per interval,
        # so per-window dedup makes measured == truth structure; compare
        # normalized shapes.
        truth = wl.true_tcm()
        assert accuracy(measured / measured.max(), truth / truth.max(), "abs") > 0.95


class TestUniformSharing:
    def test_flat_truth(self):
        wl = UniformSharingWorkload(n_threads=3, n_objects=4, object_size=8)
        tcm = wl.true_tcm()
        assert tcm[0, 1] == 32
        assert tcm[0, 0] == 0

    def test_profiled_tcm_is_flat(self):
        wl = UniformSharingWorkload(n_threads=4, n_objects=32, rounds=1)
        djvm = DJVM(n_nodes=2, costs=CostModel.fast_test())
        wl.build(djvm)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        tcm = suite.tcm()
        off_diag = tcm[~np.eye(4, dtype=bool)]
        assert (off_diag == off_diag[0]).all()
        assert off_diag[0] > 0
