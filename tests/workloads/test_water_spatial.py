"""Tests for the Water-Spatial workload."""

import pytest

from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.workloads import WaterSpatialWorkload


def build(n_molecules=128, rounds=3, n_threads=4, n_nodes=4, grid=4):
    wl = WaterSpatialWorkload(
        n_molecules=n_molecules, rounds=rounds, n_threads=n_threads, grid=grid
    )
    djvm = DJVM(n_nodes=n_nodes, costs=CostModel.fast_test())
    wl.build(djvm)
    return wl, djvm


class TestGeometry:
    def test_cell_index_roundtrip(self):
        wl = WaterSpatialWorkload(grid=4, n_threads=4)
        for idx in range(64):
            assert wl.cell_index(wl.cell_coords(idx)) == idx

    def test_neighbours_interior_cell(self):
        wl = WaterSpatialWorkload(grid=4, n_threads=4)
        centre = wl.cell_index((1, 1, 1))
        assert len(wl.neighbours(centre)) == 27

    def test_neighbours_corner_cell(self):
        wl = WaterSpatialWorkload(grid=4, n_threads=4)
        assert len(wl.neighbours(wl.cell_index((0, 0, 0)))) == 8

    def test_cells_partitioned(self):
        wl = WaterSpatialWorkload(grid=4, n_threads=4)
        seen = []
        for t in range(4):
            seen.extend(wl.cells_of(t))
        assert sorted(seen) == list(range(64))
        assert wl.owner_of_cell(0) == 0

    def test_too_few_cells_rejected(self):
        with pytest.raises(ValueError):
            WaterSpatialWorkload(grid=1, n_threads=8)


class TestStructure:
    def test_molecule_object_model(self):
        wl, djvm = build()
        mol = djvm.gos.get(wl.mol_ids[0])
        assert mol.jclass.name == "Molecule"
        coords = djvm.gos.get(mol.refs[0])
        assert coords.jclass.name == "double[]"
        # ~512 bytes per molecule, per the paper's Table I.
        assert 400 <= mol.size_bytes + coords.size_bytes <= 600

    def test_membership_conserves_molecules(self):
        wl, _ = build()
        for members in wl._rounds_members:
            total = sum(len(ms) for ms in members)
            assert total == wl.n_molecules

    def test_molecules_move_between_cells(self):
        """The evolving-load property: at least some molecules change
        cells across rounds."""
        wl, _ = build(rounds=3)
        total_moves = sum(
            len(moves) for round_moves in wl._rounds_moves for moves in round_moves.values()
        )
        assert total_moves > 0


class TestExecution:
    def test_runs_to_completion(self):
        wl, djvm = build()
        res = djvm.run(wl.programs())
        assert res.execution_time_ms > 0
        assert len(djvm.hlrc.sync.barriers) == 6  # 2 per round x 3 rounds

    def test_neighbour_slab_sharing(self):
        """Threads own x-slabs, so sharing concentrates on slab
        neighbours."""
        wl, djvm = build(n_molecules=256, n_threads=4, n_nodes=4)
        suite = ProfilerSuite(djvm, send_oals=False)
        suite.set_full_sampling()
        djvm.run(wl.programs())
        tcm = suite.tcm()
        # Adjacent slabs share; the two extreme slabs (0 and 3) share
        # less than adjacent pairs do.
        adjacent = min(tcm[i, i + 1] for i in range(3))
        assert adjacent > 0
        assert tcm[0, 3] < max(tcm[i, i + 1] for i in range(3))
