"""Property-based tests over workload structure shared by SOR, FFT and
Water-Spatial (Barnes-Hut has its own module)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.djvm import DJVM
from repro.runtime.program import OP_BARRIER, validate_program
from repro.sim.costs import CostModel
from repro.workloads import FFTWorkload, SORWorkload, WaterSpatialWorkload
from repro.workloads.base import Workload


class TestBlockRange:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=16),
    )
    def test_partition_is_exact(self, total, n_parts):
        """Block ranges cover 0..total-1 exactly once, in order."""
        seen = []
        for part in range(n_parts):
            seen.extend(Workload.block_range(total, part, n_parts))
        assert seen == list(range(total))

    @given(
        st.integers(min_value=16, max_value=500),
        st.integers(min_value=1, max_value=16),
    )
    def test_balanced_within_one(self, total, n_parts):
        sizes = [len(Workload.block_range(total, p, n_parts)) for p in range(n_parts)]
        assert max(sizes) - min(sizes) <= 1

    def test_out_of_range_part(self):
        import pytest

        with pytest.raises(ValueError):
            Workload.block_range(10, 5, 4)


def barrier_count(ops):
    return sum(1 for op in ops if op[0] == OP_BARRIER)


sor_configs = st.tuples(
    st.sampled_from([32, 64, 96]),       # n
    st.integers(min_value=1, max_value=3),  # rounds
    st.sampled_from([2, 4]),             # threads
)


class TestProgramUniformity:
    """Every thread of a barrier-synchronized workload must emit the same
    number of barrier ops (or the run deadlocks)."""

    @given(sor_configs)
    @settings(max_examples=10, deadline=None)
    def test_sor(self, cfg):
        n, rounds, threads = cfg
        wl = SORWorkload(n=n, rounds=rounds, n_threads=threads)
        wl.build(DJVM(threads, costs=CostModel.fast_test()))
        counts = {barrier_count(list(wl.program(t))) for t in range(threads)}
        assert len(counts) == 1
        assert counts.pop() == 2 * rounds

    @given(st.integers(min_value=1, max_value=3), st.sampled_from([2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_fft(self, rounds, threads):
        wl = FFTWorkload(n_points=1024, rounds=rounds, n_threads=threads)
        wl.build(DJVM(threads, costs=CostModel.fast_test()))
        counts = {barrier_count(list(wl.program(t))) for t in range(threads)}
        assert counts == {3 * rounds}

    @given(st.integers(min_value=1, max_value=3), st.sampled_from([2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_water_spatial(self, rounds, threads):
        wl = WaterSpatialWorkload(n_molecules=64, rounds=rounds, n_threads=threads)
        wl.build(DJVM(threads, costs=CostModel.fast_test()))
        counts = {barrier_count(list(wl.program(t))) for t in range(threads)}
        assert counts == {2 * rounds}

    @given(st.integers(min_value=1, max_value=3), st.sampled_from([2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_all_programs_structurally_valid(self, rounds, threads):
        for wl in (
            SORWorkload(n=64, rounds=rounds, n_threads=threads),
            FFTWorkload(n_points=1024, rounds=rounds, n_threads=threads),
            WaterSpatialWorkload(n_molecules=64, rounds=rounds, n_threads=threads),
        ):
            wl.build(DJVM(threads, costs=CostModel.fast_test()))
            for t in range(threads):
                assert validate_program(list(wl.program(t))) == []


class TestDeterministicBuilds:
    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_structure(self, seed):
        a = WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=4, seed=seed)
        b = WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=4, seed=seed)
        a.build(DJVM(4, costs=CostModel.fast_test()))
        b.build(DJVM(4, costs=CostModel.fast_test()))
        assert a._rounds_members == b._rounds_members
        assert a._rounds_moves == b._rounds_moves
